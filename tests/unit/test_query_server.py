"""Unit tests for the batched query server."""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.server import (
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    UpdateStats,
    WindowRequest,
)
from repro.rtree.validate import validate_rtree
from repro.storage import PagedTree, pack_tree

from tests.conftest import assert_same_matches, random_rects, random_windows


@pytest.fixture(scope="module")
def trees():
    data_a = random_rects(1200, seed=31)
    data_b = random_rects(300, seed=32)
    a = build_prtree(BlockStore(), data_a, 16)
    b = build_hilbert(BlockStore(), data_b, 16)
    return a, b


@pytest.fixture
def server(trees):
    a, b = trees
    return QueryServer({"a": a, "b": b})


class TestCatalog:
    def test_single_tree_served_as_default(self, trees):
        a, _ = trees
        server = QueryServer(a)
        report = server.submit([WindowRequest(Rect((0, 0), (1, 1)))])
        assert len(report.results) == 1
        assert len(report.results[0].value) == a.size

    def test_unknown_index_raises(self, server):
        with pytest.raises(KeyError, match="no index named"):
            server.submit([WindowRequest(Rect((0, 0), (1, 1)), index="zz")])

    def test_attach_replaces(self, trees, server):
        a, _ = trees
        server.attach("c", a)
        report = server.submit(
            [CountRequest(Rect((0, 0), (1, 1)), index="c")]
        )
        assert report.results[0].value == a.size

    def test_invalid_workers(self, trees):
        with pytest.raises(ValueError):
            QueryServer(trees[0], workers=0)

    def test_index_named_join_is_not_special(self, trees):
        a, _ = trees
        server = QueryServer({"join": a})
        report = server.submit(
            [
                WindowRequest(Rect((0, 0), (1, 1)), index="join"),
                JoinRequest("join", "join"),
            ]
        )
        assert len(report.results[0].value) == a.size
        assert report.results[1].value  # the self-join reports pairs

    def test_attach_evicts_only_that_index_engines(self, trees, server):
        a, b = trees
        windows = random_windows(2, seed=47)
        server.submit([WindowRequest(w, index="a") for w in windows])
        server.submit([WindowRequest(w, index="b") for w in windows])
        server.attach("a", b)  # replace "a"; "b" engines must stay warm
        warm_b = server.submit([WindowRequest(w, index="b") for w in windows])
        assert warm_b.internal_reads == 0
        fresh_a = server.submit([WindowRequest(w, index="a") for w in windows])
        assert fresh_a.results[0].value is not None


class TestResultsMatchEngines:
    def test_window(self, trees, server):
        a, _ = trees
        windows = random_windows(8, seed=33)
        report = server.submit(
            [WindowRequest(w, index="a") for w in windows]
        )
        engine = QueryEngine(a)
        for window, result in zip(windows, report.results):
            want, _ = engine.query(window)
            assert_same_matches(result.value, want)

    def test_point_and_containment_and_count(self, trees, server):
        a, _ = trees
        window = random_windows(1, seed=34)[0]
        point = (0.45, 0.55)
        report = server.submit(
            [
                PointRequest(point, index="a"),
                ContainmentRequest(window, index="a"),
                CountRequest(window, index="a"),
            ]
        )
        engine = PointQueryEngine(a)
        want_point, _ = engine.point_query(point)
        want_contained, _ = engine.containment_query(window)
        want_count, _ = engine.count(window)
        assert_same_matches(report.results[0].value, want_point)
        assert_same_matches(report.results[1].value, want_contained)
        assert report.results[2].value == want_count

    def test_knn(self, trees, server):
        a, _ = trees
        report = server.submit([KNNRequest((0.3, 0.3), k=7, index="a")])
        want, _ = KNNEngine(a).knn((0.3, 0.3), 7)
        got = report.results[0].value
        assert [n.distance for n in got] == [n.distance for n in want]

    def test_join(self, trees, server):
        a, b = trees
        report = server.submit([JoinRequest("a", "b")])
        want, _ = SpatialJoinEngine(a, b).join()
        assert len(report.results[0].value) == len(want)

    def test_mixed_batch_keeps_submission_order(self, trees, server):
        windows = random_windows(5, seed=35)
        requests = []
        for w in windows:
            requests.append(WindowRequest(w, index="a"))
            requests.append(CountRequest(w, index="b"))
            requests.append(KNNRequest(tuple(w.center()), k=3, index="a"))
        report = server.submit(requests)
        assert [r.request for r in report.results] == requests


class TestDedup:
    def test_duplicates_execute_once(self, server):
        window = random_windows(1, seed=36)[0]
        request = WindowRequest(window, index="a")
        report = server.submit([request] * 10)
        assert report.requests == 10
        assert report.executed == 1
        assert report.dedup_hits == 9
        first, *rest = report.results
        assert not first.deduped
        assert all(r.deduped for r in rest)
        assert all(r.value is first.value for r in rest)

    def test_dedup_disabled_runs_every_occurrence(self, trees):
        a, _ = trees
        server = QueryServer({"a": a}, dedup=False)
        window = random_windows(1, seed=37)[0]
        report = server.submit([WindowRequest(window, index="a")] * 4)
        assert report.executed == 4
        assert report.dedup_hits == 0

    def test_dedup_batch_leaf_ios_counted_once(self, trees):
        a, _ = trees
        window = random_windows(1, seed=38)[0]
        once = QueryServer({"a": a}).submit([WindowRequest(window, "a")])
        many = QueryServer({"a": a}).submit([WindowRequest(window, "a")] * 6)
        assert many.leaf_ios == once.leaf_ios


class TestLocalityAndStats:
    def test_reorder_improves_page_cache_on_tiny_cache(self, tmp_path):
        data = random_rects(3000, seed=39)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "t.pack"
        pack_tree(tree, path, block_size=512)
        windows = random_windows(120, seed=40, side=0.08)
        requests = [WindowRequest(w) for w in windows]

        def physical(reorder):
            paged = PagedTree.open(
                path, values=dict(tree.objects), cache_pages=24
            )
            try:
                server = QueryServer(paged, reorder=reorder)
                return server.submit(requests).physical_reads
            finally:
                paged.close()

        assert physical(True) <= physical(False)

    def test_logical_ios_independent_of_reorder(self, trees):
        a, _ = trees
        windows = random_windows(20, seed=41)
        requests = [WindowRequest(w, index="a") for w in windows]
        plain = QueryServer({"a": a}, reorder=False).submit(requests)
        sorted_ = QueryServer({"a": a}, reorder=True).submit(requests)
        assert plain.leaf_ios == sorted_.leaf_ios
        assert plain.reported == sorted_.reported

    def test_batch_report_aggregates(self, server):
        windows = random_windows(6, seed=42)
        report = server.submit([WindowRequest(w, index="a") for w in windows])
        assert report.leaf_ios == sum(
            r.stats.leaf_reads for r in report.results
        )
        assert report.reported == sum(
            len(r.value) for r in report.results
        )
        assert report.latency_s > 0
        assert report.throughput_rps > 0

    def test_physical_reads_zero_for_in_memory_trees(self, server):
        report = server.submit(
            [WindowRequest(w, index="a") for w in random_windows(3, seed=43)]
        )
        assert report.physical_reads == 0

    def test_engines_stay_warm_across_batches(self, trees):
        a, _ = trees
        server = QueryServer({"a": a})
        windows = random_windows(4, seed=44)
        first = server.submit([WindowRequest(w, index="a") for w in windows])
        second = server.submit([WindowRequest(w, index="a") for w in windows])
        # Internal nodes were pooled by the first batch.
        assert second.internal_reads == 0
        assert first.internal_reads >= second.internal_reads
        assert server.batches_served == 2


class TestWrites:
    """Insert/delete request kinds: ordering, dedup exemption, and the
    per-batch write-I/O / flushed-page accounting."""

    @pytest.fixture
    def paged(self, tmp_path):
        data = random_rects(600, seed=61)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "w.pack"
        pack_tree(tree, path, block_size=4096)
        paged = PagedTree.open(
            path, values=dict(tree.objects), cache_pages=256
        )
        yield paged, data
        paged.close()

    def test_insert_returns_oid_and_is_queryable(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        rect = Rect((0.31, 0.41), (0.32, 0.42))
        report = server.submit(
            [
                InsertRequest(rect, "fresh"),
                WindowRequest(Rect((0.3, 0.4), (0.33, 0.43))),
            ]
        )
        oid = report.results[0].value
        assert tree.objects[oid] == "fresh"
        # The read in the same batch observes the write.
        assert "fresh" in [v for _, v in report.results[1].value]
        assert report.writes == 1
        assert report.write_ios > 0
        assert isinstance(report.results[0].stats, UpdateStats)
        assert report.results[0].stats.writes > 0

    def test_delete_result_reports_found(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        rect, value = data[0]
        report = server.submit(
            [
                DeleteRequest(rect, value),
                DeleteRequest(rect, value),  # second one finds nothing
            ]
        )
        assert report.results[0].value is True
        assert report.results[1].value is False
        assert report.writes == 2
        assert tree.size == len(data) - 1

    def test_identical_inserts_are_never_deduped(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        rect = Rect((0.11, 0.11), (0.12, 0.12))
        report = server.submit([InsertRequest(rect, "dup")] * 5)
        assert report.executed == 5
        assert report.dedup_hits == 0
        assert report.writes == 5
        assert tree.size == len(data) + 5
        oids = [r.value for r in report.results]
        assert len(set(oids)) == 5

    def test_unhashable_write_values_are_fine(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        rect = Rect((0.21, 0.21), (0.22, 0.22))
        report = server.submit(
            [InsertRequest(rect, ["a", "list"]), CountRequest(rect)]
        )
        assert report.results[1].value >= 1

    def test_writes_apply_before_reads(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        rect = Rect((0.61, 0.61), (0.62, 0.62))
        # Read submitted first still observes the later write: batch
        # semantics are writes-first.
        report = server.submit(
            [CountRequest(rect), InsertRequest(rect, "later")]
        )
        assert report.results[0].value >= 1

    def test_warm_engines_invalidated_by_writes(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        window = Rect((0.4, 0.4), (0.45, 0.45))
        before = server.submit([WindowRequest(window)])
        inside = Rect((0.41, 0.41), (0.42, 0.42))
        server.submit([InsertRequest(inside, "inserted")])
        after = server.submit([WindowRequest(window)])
        got = [v for _, v in after.results[0].value]
        want = [v for _, v in before.results[0].value] + ["inserted"]
        assert sorted(map(str, got)) == sorted(map(str, want))

    def test_batch_sync_flushes_dirty_pages(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        requests = [
            InsertRequest(Rect((0.5 + i * 0.001, 0.5), (0.5 + i * 0.001 + 0.002, 0.502)), i)
            for i in range(40)
        ]
        report = server.submit(requests)
        assert report.pages_flushed > 0
        # Write-back: far fewer physical page writes than logical write
        # I/Os (write-through would pay one physical write each).
        assert report.pages_flushed < report.write_ios
        assert tree.page_store.dirty_pages() == 0  # batch is a sync point

    def test_sync_writes_disabled_defers_flushing(self, paged):
        tree, data = paged
        server = QueryServer(tree, sync_writes=False)
        report = server.submit(
            [InsertRequest(Rect((0.7, 0.7), (0.71, 0.71)), "x")]
        )
        assert tree.page_store.dirty_pages() > 0
        assert report.pages_flushed == 0
        assert tree.sync() > 0

    def test_mixed_write_read_batch_stays_consistent(self, paged):
        tree, data = paged
        server = QueryServer(tree)
        requests = []
        for i, (rect, value) in enumerate(data[:30]):
            requests.append(DeleteRequest(rect, value))
        for i in range(30):
            x = 0.8 + (i % 6) * 0.01
            y = 0.1 + (i // 6) * 0.01
            requests.append(
                InsertRequest(Rect((x, y), (x + 0.005, y + 0.005)), f"n{i}")
            )
        requests.append(WindowRequest(Rect((0, 0), (1, 1))))
        report = server.submit(requests)
        assert len(report.results[-1].value) == len(data)
        validate_rtree(tree, expect_size=len(data))

    def test_writes_work_on_in_memory_trees_too(self, trees):
        a, _ = trees
        server = QueryServer({"a": a})
        size_before = a.size
        report = server.submit(
            [InsertRequest(Rect((0.5, 0.5), (0.51, 0.51)), "mem", index="a")]
        )
        assert a.size == size_before + 1
        assert report.pages_flushed == 0  # nothing paged behind "a"
        assert report.write_ios > 0
        # Leave the shared fixture as we found it.
        assert a.delete(Rect((0.5, 0.5), (0.51, 0.51)), "mem")

    def test_update_stream_oracle_handles_duplicate_pairs(self, paged):
        from repro.experiments.serving import mixed_update_requests

        tree, data = paged
        rect = Rect((0.9, 0.9), (0.91, 0.91))
        # Two identical (rect, value) pairs; one drawn as a delete must
        # leave exactly one copy in the predicted live set.
        doubled = [(rect, "twin"), (rect, "twin")]
        requests, live = mixed_update_requests(
            doubled, fresh=[], delete_frac=1.0, seed=4
        )
        assert len(requests) == 2  # both copies are deleted eventually
        assert live == []
        requests, live = mixed_update_requests(
            doubled, fresh=[(rect, "other")], delete_frac=0.0, seed=4
        )
        deletes = [r for r in requests if r.kind == "delete"]
        assert live.count((rect, "twin")) == 2 - len(deletes)

    def test_readonly_index_write_error_propagates(self, tmp_path):
        data = random_rects(200, seed=62)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "ro.pack"
        pack_tree(tree, path)
        with PagedTree.open(
            path, values=dict(tree.objects), readonly=True
        ) as ro:
            server = QueryServer(ro)
            from repro.storage import StorageError

            with pytest.raises(StorageError, match="read-only"):
                server.submit(
                    [InsertRequest(Rect((0, 0), (1, 1)), "nope")]
                )


class TestWorkers:
    def test_threaded_matches_serial(self, tmp_path):
        data = random_rects(2000, seed=45)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "w.pack"
        pack_tree(tree, path)
        windows = random_windows(30, seed=46)
        requests = []
        for w in windows:
            requests.append(WindowRequest(w))
            requests.append(CountRequest(w))
            requests.append(KNNRequest(tuple(w.center()), k=4))
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            serial = QueryServer(paged, workers=1).submit(requests)
            threaded = QueryServer(paged, workers=4).submit(requests)
            assert serial.leaf_ios == threaded.leaf_ios
            for s, t in zip(serial.results, threaded.results):
                if isinstance(s.value, list):
                    assert len(s.value) == len(t.value)
                else:
                    assert s.value == t.value
