"""Unit tests for the batched query server."""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.server import (
    ContainmentRequest,
    CountRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)
from repro.storage import PagedTree, pack_tree

from tests.conftest import assert_same_matches, random_rects, random_windows


@pytest.fixture(scope="module")
def trees():
    data_a = random_rects(1200, seed=31)
    data_b = random_rects(300, seed=32)
    a = build_prtree(BlockStore(), data_a, 16)
    b = build_hilbert(BlockStore(), data_b, 16)
    return a, b


@pytest.fixture
def server(trees):
    a, b = trees
    return QueryServer({"a": a, "b": b})


class TestCatalog:
    def test_single_tree_served_as_default(self, trees):
        a, _ = trees
        server = QueryServer(a)
        report = server.submit([WindowRequest(Rect((0, 0), (1, 1)))])
        assert len(report.results) == 1
        assert len(report.results[0].value) == a.size

    def test_unknown_index_raises(self, server):
        with pytest.raises(KeyError, match="no index named"):
            server.submit([WindowRequest(Rect((0, 0), (1, 1)), index="zz")])

    def test_attach_replaces(self, trees, server):
        a, _ = trees
        server.attach("c", a)
        report = server.submit(
            [CountRequest(Rect((0, 0), (1, 1)), index="c")]
        )
        assert report.results[0].value == a.size

    def test_invalid_workers(self, trees):
        with pytest.raises(ValueError):
            QueryServer(trees[0], workers=0)

    def test_index_named_join_is_not_special(self, trees):
        a, _ = trees
        server = QueryServer({"join": a})
        report = server.submit(
            [
                WindowRequest(Rect((0, 0), (1, 1)), index="join"),
                JoinRequest("join", "join"),
            ]
        )
        assert len(report.results[0].value) == a.size
        assert report.results[1].value  # the self-join reports pairs

    def test_attach_evicts_only_that_index_engines(self, trees, server):
        a, b = trees
        windows = random_windows(2, seed=47)
        server.submit([WindowRequest(w, index="a") for w in windows])
        server.submit([WindowRequest(w, index="b") for w in windows])
        server.attach("a", b)  # replace "a"; "b" engines must stay warm
        warm_b = server.submit([WindowRequest(w, index="b") for w in windows])
        assert warm_b.internal_reads == 0
        fresh_a = server.submit([WindowRequest(w, index="a") for w in windows])
        assert fresh_a.results[0].value is not None


class TestResultsMatchEngines:
    def test_window(self, trees, server):
        a, _ = trees
        windows = random_windows(8, seed=33)
        report = server.submit(
            [WindowRequest(w, index="a") for w in windows]
        )
        engine = QueryEngine(a)
        for window, result in zip(windows, report.results):
            want, _ = engine.query(window)
            assert_same_matches(result.value, want)

    def test_point_and_containment_and_count(self, trees, server):
        a, _ = trees
        window = random_windows(1, seed=34)[0]
        point = (0.45, 0.55)
        report = server.submit(
            [
                PointRequest(point, index="a"),
                ContainmentRequest(window, index="a"),
                CountRequest(window, index="a"),
            ]
        )
        engine = PointQueryEngine(a)
        want_point, _ = engine.point_query(point)
        want_contained, _ = engine.containment_query(window)
        want_count, _ = engine.count(window)
        assert_same_matches(report.results[0].value, want_point)
        assert_same_matches(report.results[1].value, want_contained)
        assert report.results[2].value == want_count

    def test_knn(self, trees, server):
        a, _ = trees
        report = server.submit([KNNRequest((0.3, 0.3), k=7, index="a")])
        want, _ = KNNEngine(a).knn((0.3, 0.3), 7)
        got = report.results[0].value
        assert [n.distance for n in got] == [n.distance for n in want]

    def test_join(self, trees, server):
        a, b = trees
        report = server.submit([JoinRequest("a", "b")])
        want, _ = SpatialJoinEngine(a, b).join()
        assert len(report.results[0].value) == len(want)

    def test_mixed_batch_keeps_submission_order(self, trees, server):
        windows = random_windows(5, seed=35)
        requests = []
        for w in windows:
            requests.append(WindowRequest(w, index="a"))
            requests.append(CountRequest(w, index="b"))
            requests.append(KNNRequest(tuple(w.center()), k=3, index="a"))
        report = server.submit(requests)
        assert [r.request for r in report.results] == requests


class TestDedup:
    def test_duplicates_execute_once(self, server):
        window = random_windows(1, seed=36)[0]
        request = WindowRequest(window, index="a")
        report = server.submit([request] * 10)
        assert report.requests == 10
        assert report.executed == 1
        assert report.dedup_hits == 9
        first, *rest = report.results
        assert not first.deduped
        assert all(r.deduped for r in rest)
        assert all(r.value is first.value for r in rest)

    def test_dedup_disabled_runs_every_occurrence(self, trees):
        a, _ = trees
        server = QueryServer({"a": a}, dedup=False)
        window = random_windows(1, seed=37)[0]
        report = server.submit([WindowRequest(window, index="a")] * 4)
        assert report.executed == 4
        assert report.dedup_hits == 0

    def test_dedup_batch_leaf_ios_counted_once(self, trees):
        a, _ = trees
        window = random_windows(1, seed=38)[0]
        once = QueryServer({"a": a}).submit([WindowRequest(window, "a")])
        many = QueryServer({"a": a}).submit([WindowRequest(window, "a")] * 6)
        assert many.leaf_ios == once.leaf_ios


class TestLocalityAndStats:
    def test_reorder_improves_page_cache_on_tiny_cache(self, tmp_path):
        data = random_rects(3000, seed=39)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "t.pack"
        pack_tree(tree, path, block_size=512)
        windows = random_windows(120, seed=40, side=0.08)
        requests = [WindowRequest(w) for w in windows]

        def physical(reorder):
            paged = PagedTree.open(
                path, values=dict(tree.objects), cache_pages=24
            )
            try:
                server = QueryServer(paged, reorder=reorder)
                return server.submit(requests).physical_reads
            finally:
                paged.close()

        assert physical(True) <= physical(False)

    def test_logical_ios_independent_of_reorder(self, trees):
        a, _ = trees
        windows = random_windows(20, seed=41)
        requests = [WindowRequest(w, index="a") for w in windows]
        plain = QueryServer({"a": a}, reorder=False).submit(requests)
        sorted_ = QueryServer({"a": a}, reorder=True).submit(requests)
        assert plain.leaf_ios == sorted_.leaf_ios
        assert plain.reported == sorted_.reported

    def test_batch_report_aggregates(self, server):
        windows = random_windows(6, seed=42)
        report = server.submit([WindowRequest(w, index="a") for w in windows])
        assert report.leaf_ios == sum(
            r.stats.leaf_reads for r in report.results
        )
        assert report.reported == sum(
            len(r.value) for r in report.results
        )
        assert report.latency_s > 0
        assert report.throughput_rps > 0

    def test_physical_reads_zero_for_in_memory_trees(self, server):
        report = server.submit(
            [WindowRequest(w, index="a") for w in random_windows(3, seed=43)]
        )
        assert report.physical_reads == 0

    def test_engines_stay_warm_across_batches(self, trees):
        a, _ = trees
        server = QueryServer({"a": a})
        windows = random_windows(4, seed=44)
        first = server.submit([WindowRequest(w, index="a") for w in windows])
        second = server.submit([WindowRequest(w, index="a") for w in windows])
        # Internal nodes were pooled by the first batch.
        assert second.internal_reads == 0
        assert first.internal_reads >= second.internal_reads
        assert server.batches_served == 2


class TestWorkers:
    def test_threaded_matches_serial(self, tmp_path):
        data = random_rects(2000, seed=45)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "w.pack"
        pack_tree(tree, path)
        windows = random_windows(30, seed=46)
        requests = []
        for w in windows:
            requests.append(WindowRequest(w))
            requests.append(CountRequest(w))
            requests.append(KNNRequest(tuple(w.center()), k=4))
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            serial = QueryServer(paged, workers=1).submit(requests)
            threaded = QueryServer(paged, workers=4).submit(requests)
            assert serial.leaf_ios == threaded.leaf_ios
            for s, t in zip(serial.results, threaded.results):
                if isinstance(s.value, list):
                    assert len(s.value) == len(t.value)
                else:
                    assert s.value == t.value
