"""Unit tests for point (stabbing), containment and count queries."""

import pytest

from tests.conftest import random_rects, random_windows

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect, point_rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.point import (
    PointQueryEngine,
    brute_force_containment,
    brute_force_point_query,
    containment_query,
    count_query,
    point_query,
)
from repro.rtree.query import brute_force_query

BUILDERS = [build_prtree, build_hilbert]
BUILDER_IDS = ["PR", "H"]


def values(matches):
    return sorted(v for _, v in matches)


@pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
class TestPointQueryMatchesOracle:
    def test_random_points(self, builder, medium_data):
        tree = builder(BlockStore(), medium_data, 8)
        engine = PointQueryEngine(tree)
        for i in range(20):
            point = (i / 20, 1 - i / 20)
            got, _ = engine.point_query(point)
            assert values(got) == values(
                brute_force_point_query(medium_data, point)
            )

    def test_boundary_point_counts(self, builder):
        data = [(Rect((0.2, 0.2), (0.4, 0.4)), "r")]
        tree = builder(BlockStore(), data, 4)
        assert values(point_query(tree, (0.4, 0.4))) == ["r"]
        assert point_query(tree, (0.41, 0.4)) == []

    def test_3d(self, builder):
        data = random_rects(120, seed=9, dim=3, max_side=0.3)
        tree = builder(BlockStore(), data, 4)
        point = (0.5, 0.5, 0.5)
        got, _ = PointQueryEngine(tree).point_query(point)
        assert values(got) == values(brute_force_point_query(data, point))


@pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
class TestContainmentMatchesOracle:
    def test_random_windows(self, builder, medium_data):
        tree = builder(BlockStore(), medium_data, 8)
        engine = PointQueryEngine(tree)
        for window in random_windows(10, seed=3, side=0.3):
            got, _ = engine.containment_query(window)
            assert values(got) == values(
                brute_force_containment(medium_data, window)
            )

    def test_containment_is_subset_of_intersection(self, builder, small_data):
        tree = builder(BlockStore(), small_data, 8)
        window = Rect((0.2, 0.2), (0.7, 0.7))
        contained = set(values(containment_query(tree, window)))
        intersecting = set(values(brute_force_query(small_data, window)))
        assert contained <= intersecting


@pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
class TestCountMatchesOracle:
    def test_random_windows(self, builder, medium_data):
        tree = builder(BlockStore(), medium_data, 8)
        engine = PointQueryEngine(tree)
        for window in random_windows(10, seed=4):
            count, stats = engine.count(window)
            assert count == len(brute_force_query(medium_data, window))
            assert stats.reported == count

    def test_count_costs_like_window_query(self, builder, medium_data):
        from repro.rtree.query import QueryEngine

        tree = builder(BlockStore(), medium_data, 8)
        window = Rect((0.3, 0.3), (0.6, 0.6))
        _, wstats = QueryEngine(tree).query(window)
        _, cstats = PointQueryEngine(tree).count(window)
        assert cstats.leaf_reads == wstats.leaf_reads
        assert cstats.reported == wstats.reported


class TestPointEdgeCases:
    def test_empty_tree(self):
        tree = build_prtree(BlockStore(), [], 8)
        assert point_query(tree, (0.5, 0.5)) == []
        assert containment_query(tree, Rect((0, 0), (1, 1))) == []
        assert count_query(tree, Rect((0, 0), (1, 1))) == 0

    def test_dimension_mismatch_raises(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = PointQueryEngine(tree)
        with pytest.raises(ValueError):
            engine.point_query((0.5,))
        window_3d = Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            engine.containment_query(window_3d)
        with pytest.raises(ValueError):
            engine.count(window_3d)

    def test_stacked_identical_points(self):
        data = [(point_rect((0.5, 0.5)), i) for i in range(30)]
        tree = build_prtree(BlockStore(), data, 4)
        assert values(point_query(tree, (0.5, 0.5))) == list(range(30))

    def test_point_prunes_harder_than_window(self, medium_data):
        # Stabbing descends only children whose box contains the point,
        # so a point query never reads more leaves than the equivalent
        # degenerate window query.
        from repro.rtree.query import QueryEngine

        tree = build_prtree(BlockStore(), medium_data, 8)
        point = (0.37, 0.61)
        _, pstats = PointQueryEngine(tree).point_query(point)
        _, wstats = QueryEngine(tree).query(point_rect(point))
        assert pstats.leaf_reads <= wstats.leaf_reads


class TestSharedEngineAccounting:
    def test_operators_share_one_warm_cache(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = PointQueryEngine(tree)
        # Exercise every internal node once via a count of everything.
        engine.count(Rect((0.0, 0.0), (1.0, 1.0)))
        _, s1 = engine.point_query((0.5, 0.5))
        _, s2 = engine.containment_query(Rect((0.2, 0.2), (0.8, 0.8)))
        assert s1.internal_reads == 0 and s2.internal_reads == 0
        assert engine.totals.queries == 3

    def test_totals_merge_across_operators(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = PointQueryEngine(tree)
        _, a = engine.point_query((0.5, 0.5))
        _, b = engine.count(Rect((0.1, 0.1), (0.9, 0.9)))
        assert engine.totals.leaf_reads == a.leaf_reads + b.leaf_reads
        assert engine.totals.reported == a.reported + b.reported
