"""Unit tests for the asyncio serving layer over an in-memory tree."""

import asyncio

import pytest

from repro import BlockStore, Rect, build_prtree
from repro.server import (
    CountRequest,
    DeleteRequest,
    InsertRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)
from repro.service import (
    AdmissionError,
    AsyncQueryService,
    ServiceClosed,
)

from tests.conftest import random_rects


@pytest.fixture
def data():
    return random_rects(800, seed=11)


@pytest.fixture
def tree(data):
    return build_prtree(BlockStore(), data, fanout=16)


def run(coro):
    return asyncio.run(coro)


def read_mix(count=30, seed=5):
    rects = random_rects(count, seed=seed, max_side=0.2)
    requests = []
    for i, (rect, _) in enumerate(rects):
        if i % 4 == 0:
            requests.append(CountRequest(rect))
        elif i % 4 == 1:
            requests.append(PointRequest(rect.lo))
        elif i % 4 == 2:
            requests.append(KNNRequest(rect.lo, k=3))
        else:
            requests.append(WindowRequest(rect))
    return requests


class TestReads:
    def test_values_match_sync_server(self, tree):
        requests = read_mix()

        async def main():
            async with AsyncQueryService(tree, max_batch=8) as service:
                return await service.submit_many(requests)

        responses = run(main())
        expected = QueryServer(tree).submit(requests).values()
        assert [r.value for r in responses] == expected

    def test_response_latency_fields(self, tree):
        async def main():
            async with AsyncQueryService(tree) as service:
                return await service.submit(
                    WindowRequest(Rect((0.0, 0.0), (0.5, 0.5)))
                )

        response = run(main())
        assert response.latency_s >= response.queue_s >= 0.0
        assert response.engine_s >= 0.0
        assert response.batch_size >= 1

    def test_coalescing_batches_concurrent_clients(self, tree):
        async def main():
            async with AsyncQueryService(
                tree, max_batch=64, flush_interval=0.02
            ) as service:
                responses = await service.submit_many(read_mix(20))
                assert service.stats.batches < 20  # riders shared batches
                return responses

        responses = run(main())
        assert max(r.batch_size for r in responses) > 1

    def test_stats_per_kind_counts(self, tree):
        requests = read_mix(16)

        async def main():
            async with AsyncQueryService(tree) as service:
                await service.submit_many(requests)
                return service.stats

        stats = run(main())
        assert stats.completed == len(requests)
        counts = {s.kind: s.count for s in stats.kind_summaries()}
        assert counts["count"] == 4
        assert counts["knn"] == 4


class TestWrites:
    def test_read_your_writes_after_await(self, tree):
        rect = Rect((0.31, 0.31), (0.32, 0.32))

        async def main():
            async with AsyncQueryService(tree) as service:
                inserted = await service.submit(InsertRequest(rect, "fresh"))
                assert isinstance(inserted.value, int)
                seen = await service.submit(WindowRequest(rect))
                assert any(v == "fresh" for _, v in seen.value)
                removed = await service.submit(DeleteRequest(rect, "fresh"))
                assert removed.value is True
                gone = await service.submit(WindowRequest(rect))
                assert not any(v == "fresh" for _, v in gone.value)

        run(main())

    def test_write_order_is_admission_order(self, tree):
        # Fire interleaved inserts/deletes of the same entry without
        # awaiting; FIFO write order means exactly the serial outcome.
        rect = Rect((0.71, 0.71), (0.72, 0.72))
        size_before = tree.size

        async def main():
            async with AsyncQueryService(tree, max_batch=4) as service:
                ops = []
                for round_ in range(6):
                    ops.append(service.submit(InsertRequest(rect, "dup")))
                    if round_ % 2:
                        ops.append(
                            service.submit(DeleteRequest(rect, "dup"))
                        )
                return await asyncio.gather(*ops)

        responses = run(main())
        deletes = [
            r for r in responses if isinstance(r.request, DeleteRequest)
        ]
        assert all(r.value is True for r in deletes)  # always one to remove
        assert tree.size == size_before + 6 - 3

    def test_writes_visible_to_unawaited_later_reads(self, tree):
        # A read admitted after a write (same submission burst) may be
        # batched after it; at minimum the final state must hold.
        rect = Rect((0.11, 0.83), (0.12, 0.84))

        async def main():
            async with AsyncQueryService(tree) as service:
                await asyncio.gather(
                    service.submit(InsertRequest(rect, "w")),
                    service.submit(CountRequest(Rect((0, 0), (1, 1)))),
                )
                final = await service.submit(WindowRequest(rect))
                assert any(v == "w" for _, v in final.value)

        run(main())


class TestAdmission:
    def test_reject_mode_fast_fails(self, tree):
        async def main():
            async with AsyncQueryService(
                tree,
                max_batch=4,
                flush_interval=0.05,
                max_pending_reads=3,
                admission="reject",
            ) as service:
                tasks = [
                    asyncio.ensure_future(service.submit(request))
                    for request in read_mix(40)
                ]
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                rejected = [
                    r for r in results if isinstance(r, AdmissionError)
                ]
                completed = [
                    r for r in results if not isinstance(r, Exception)
                ]
                assert rejected, "tiny bound must shed load"
                assert len(rejected) + len(completed) == 40
                assert service.stats.rejected_reads == len(rejected)
                assert all(e.lane == "read" for e in rejected)
                # The service stays serviceable after shedding.
                ok = await service.submit(
                    CountRequest(Rect((0.0, 0.0), (1.0, 1.0)))
                )
                assert isinstance(ok.value, int)

        run(main())

    def test_write_lane_has_its_own_bound(self, tree):
        async def main():
            async with AsyncQueryService(
                tree,
                max_pending_writes=1,
                flush_interval=0.05,
                admission="reject",
            ) as service:
                rect = Rect((0.5, 0.5), (0.51, 0.51))
                tasks = [
                    asyncio.ensure_future(
                        service.submit(InsertRequest(rect, f"v{i}"))
                    )
                    for i in range(10)
                ]
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                rejected = [
                    r for r in results if isinstance(r, AdmissionError)
                ]
                assert rejected and all(
                    e.lane == "write" for e in rejected
                )
                assert service.stats.rejected_writes == len(rejected)

        run(main())

    def test_backpressure_mode_completes_everything(self, tree):
        async def main():
            async with AsyncQueryService(
                tree,
                max_batch=4,
                flush_interval=0.0,
                max_pending_reads=3,
                admission="backpressure",
            ) as service:
                responses = await service.submit_many(read_mix(40))
                assert len(responses) == 40
                assert service.stats.rejected == 0
                # The bound held: depth never exceeded the lane limit.
                assert service.stats.max_queue_depth <= 3

        run(main())


class TestCancellation:
    def test_cancelled_client_does_not_break_batch_mates(self, tree):
        # A client that times out while queued cancels its future; the
        # batch must still complete for everyone else — including
        # write batches, whose completion runs inline in the
        # dispatcher.
        async def main():
            async with AsyncQueryService(
                tree, max_batch=8, flush_interval=0.05
            ) as service:
                doomed = asyncio.ensure_future(
                    service.submit(WindowRequest(Rect((0.0, 0.0), (1.0, 1.0))))
                )
                write = asyncio.ensure_future(
                    service.submit(
                        InsertRequest(Rect((0.9, 0.9), (0.91, 0.91)), "c")
                    )
                )
                mates = [
                    asyncio.ensure_future(
                        service.submit(
                            CountRequest(Rect((0.0, 0.0), (1.0, 1.0)))
                        )
                    )
                    for _ in range(4)
                ]
                await asyncio.sleep(0)  # everyone enqueued
                doomed.cancel()
                write.cancel()
                responses = await asyncio.wait_for(
                    asyncio.gather(*mates), timeout=5.0
                )
                assert all(isinstance(r.value, int) for r in responses)
                # The dispatcher survived; later requests still served.
                later = await service.submit(
                    CountRequest(Rect((0.0, 0.0), (1.0, 1.0)))
                )
                assert isinstance(later.value, int)

        run(main())


class TestLifecycle:
    def test_submit_after_close_raises(self, tree):
        async def main():
            service = AsyncQueryService(tree)
            async with service:
                await service.submit(
                    CountRequest(Rect((0.0, 0.0), (1.0, 1.0)))
                )
            with pytest.raises(ServiceClosed):
                await service.submit(
                    CountRequest(Rect((0.0, 0.0), (1.0, 1.0)))
                )

        run(main())

    def test_close_drains_admitted_requests(self, tree):
        async def main():
            service = AsyncQueryService(tree, flush_interval=0.05)
            service_started = False
            async with service:
                service_started = True
                tasks = [
                    asyncio.ensure_future(service.submit(request))
                    for request in read_mix(12)
                ]
                await asyncio.sleep(0)  # let tasks enqueue
            assert service_started
            responses = await asyncio.gather(*tasks)
            assert len(responses) == 12
            assert all(r.value is not None for r in responses)

        run(main())

    def test_aclose_idempotent(self, tree):
        async def main():
            service = AsyncQueryService(tree)
            service.start()
            await service.aclose()
            await service.aclose()
            assert service.closed

        run(main())

    def test_invalid_parameters(self, tree):
        with pytest.raises(ValueError):
            AsyncQueryService(tree, max_batch=0)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, flush_interval=-1.0)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, max_pending_reads=0)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, admission="maybe")
        with pytest.raises(ValueError):
            AsyncQueryService(tree, executor_workers=0)


class TestGroupCommit:
    """Group commit: durability cadence decoupled from write batches.

    ``sync_writes=True`` stalls every write batch on an fsync;
    ``sync_every_n`` / ``sync_interval_s`` instead commit the mutated
    indexes off the exclusive write window (docs/durability.md).  These
    tests pin the cadence, the final commit at close, and the knobs'
    mutual exclusion — against a real file-backed index, whose
    ``commit_epoch`` counts exactly the commits that reached disk.
    """

    @pytest.fixture
    def packed(self, tmp_path, data):
        from repro.storage import pack_tree

        oracle = build_prtree(BlockStore(), data, fanout=16)
        path = tmp_path / "gc.pack"
        pack_tree(oracle, path)
        return path, dict(oracle.objects)

    @staticmethod
    def _insert(i):
        return InsertRequest(Rect((2.0 + i, 2.0), (2.1 + i, 2.1)), 9_000 + i)

    def test_sync_writes_excludes_group_commit(self, tree):
        with pytest.raises(ValueError, match="group commit"):
            AsyncQueryService(tree, sync_writes=True, sync_every_n=4)
        with pytest.raises(ValueError, match="group commit"):
            AsyncQueryService(tree, sync_writes=True, sync_interval_s=1.0)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, sync_every_n=0)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, sync_interval_s=0.0)

    def test_every_n_batches_commits(self, packed):
        from repro.storage import PagedTree

        path, values = packed

        async def main(paged):
            service = AsyncQueryService(
                paged, max_batch=4, flush_interval=0.0, sync_every_n=2
            )
            async with service:
                for i in range(4):  # awaited singly: four write batches
                    await service.submit(self._insert(i))
            return service.stats

        paged = PagedTree.open(path, values=values)
        try:
            stats = run(main(paged))
        finally:
            paged.close()
        # Two cadence commits (after batches 2 and 4); close found
        # nothing left to flush.
        assert stats.commits == 2
        assert stats.committed_batches == 4
        assert stats.commit_failures == 0

        with PagedTree.open(path, readonly=True) as survivor:
            assert survivor.size == len(values) + 4
            # pack epoch + exactly the two group commits
            assert survivor.page_store.file_store.commit_epoch == 3

    def test_close_commits_the_tail(self, packed):
        from repro.storage import PagedTree

        path, values = packed

        async def main(paged):
            service = AsyncQueryService(
                paged, max_batch=4, flush_interval=0.0, sync_every_n=100
            )
            async with service:
                for i in range(3):
                    await service.submit(self._insert(i))
            return service.stats

        paged = PagedTree.open(path, values=values)
        try:
            stats = run(main(paged))
        finally:
            paged.close()
        assert stats.commits == 1  # only the final commit at close
        assert stats.committed_batches == 3
        with PagedTree.open(path, readonly=True) as survivor:
            assert survivor.size == len(values) + 3

    def test_interval_cadence_fires_while_idle(self, packed):
        from repro.storage import PagedTree

        path, values = packed

        async def main(paged):
            service = AsyncQueryService(
                paged,
                max_batch=4,
                flush_interval=0.0,
                sync_interval_s=0.05,
            )
            async with service:
                await service.submit(self._insert(0))
                for _ in range(40):  # idle: the timer must fire alone
                    await asyncio.sleep(0.025)
                    if service.stats.commits:
                        break
                mid_run_commits = service.stats.commits
            return mid_run_commits, service.stats

        paged = PagedTree.open(path, values=values)
        try:
            mid_run_commits, stats = run(main(paged))
        finally:
            paged.close()
        assert mid_run_commits >= 1  # fired before close, not at it
        assert stats.committed_batches == 1

    def test_reads_are_never_stalled_by_cadence(self, packed):
        from repro.storage import PagedTree

        path, values = packed
        window = Rect((0.0, 0.0), (1.0, 1.0))

        async def main(paged):
            service = AsyncQueryService(
                paged, max_batch=8, flush_interval=0.0, sync_every_n=1
            )
            async with service:
                for i in range(3):
                    await service.submit(self._insert(i))
                    response = await service.submit(WindowRequest(window))
                    assert len(response.value) == len(values)
            return service.stats

        paged = PagedTree.open(path, values=values)
        try:
            stats = run(main(paged))
        finally:
            paged.close()
        assert stats.commits == 3
        assert stats.completed == 6
