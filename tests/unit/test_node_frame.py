"""Unit tests for the dual node representation (entries <-> frame)."""

import pytest

from repro.geometry import kernels
from repro.geometry.rect import Rect, mbr_of
from repro.rtree.node import Node, NodeFrame

from tests.conftest import random_rects


@pytest.fixture
def entries():
    return [(rect, value) for rect, value in random_rects(12, seed=3)]


class TestNodeFrame:
    def test_from_entries_round_trip(self, entries):
        frame = NodeFrame.from_entries(True, entries)
        assert frame.is_leaf
        assert len(frame) == len(entries)
        for i, (rect, pointer) in enumerate(entries):
            assert frame.rect(i) == rect
            assert frame.entry(i) == (rect, pointer)
        assert frame.entries() == entries
        assert frame.ptrs == [pointer for _, pointer in entries]

    def test_rect_materializes_python_floats(self, entries):
        frame = NodeFrame.from_entries(False, entries)
        rect = frame.rect(0)
        assert all(type(c) is float for c in rect.lo + rect.hi)
        # The materialized Rect behaves like a normal immutable Rect.
        with pytest.raises(AttributeError):
            rect.lo = (0.0, 0.0)

    def test_mbr_matches_mbr_of(self, entries):
        frame = NodeFrame.from_entries(True, entries)
        assert frame.mbr() == mbr_of(rect for rect, _ in entries)

    def test_empty_frame(self):
        frame = NodeFrame.from_entries(True, [])
        assert len(frame) == 0
        assert frame.entries() == []
        with pytest.raises(ValueError):
            frame.mbr()

    def test_table_representation_matches_backend(self, entries):
        frame = NodeFrame.from_entries(True, entries)
        if kernels.HAVE_NUMPY:
            assert isinstance(frame.lo, kernels.np.ndarray)
            assert frame.lo.shape == (len(entries), 2)
        else:
            assert isinstance(frame.lo, tuple)


class TestNodeFrameCoherence:
    def test_frame_is_cached_until_mutation(self, entries):
        node = Node(True, entries)
        first = node.frame()
        assert node.frame() is first
        node.add(Rect((0, 0), (0.1, 0.1)), 99)
        second = node.frame()
        assert second is not first
        assert len(second) == len(entries) + 1

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda e: e.append((Rect((0, 0), (1, 1)), 7)),
            lambda e: e.extend([(Rect((0, 0), (1, 1)), 7)]),
            lambda e: e.insert(0, (Rect((0, 0), (1, 1)), 7)),
            lambda e: e.pop(),
            lambda e: e.remove(e[0]),
            lambda e: e.clear(),
            lambda e: e.sort(key=lambda entry: entry[1]),
            lambda e: e.reverse(),
            lambda e: e.__setitem__(0, (Rect((0, 0), (1, 1)), 7)),
            lambda e: e.__delitem__(0),
            lambda e: e.__iadd__([(Rect((0, 0), (1, 1)), 7)]),
            lambda e: e.__imul__(2),
        ],
        ids=[
            "append", "extend", "insert", "pop", "remove", "clear",
            "sort", "reverse", "setitem", "delitem", "iadd", "imul",
        ],
    )
    def test_every_list_mutation_invalidates_the_frame(
        self, entries, mutate
    ):
        node = Node(True, entries)
        cached = node.frame()
        mutate(node.entries)
        fresh = node.frame()
        assert fresh is not cached
        assert len(fresh) == len(node.entries)
        assert fresh.entries() == list(node.entries)

    def test_entries_setter_drops_the_frame(self, entries):
        node = Node(True, entries)
        cached = node.frame()
        node.entries = entries[:3]
        assert len(node) == 3
        assert node.frame() is not cached

    def test_slice_read_does_not_invalidate(self, entries):
        node = Node(True, entries)
        cached = node.frame()
        _ = node.entries[:4]
        _ = list(node.entries)
        assert node.frame() is cached


class TestNodeFromFrame:
    def test_lazy_entry_materialization(self, entries):
        frame = NodeFrame.from_entries(False, entries)
        node = Node.from_frame(frame)
        assert node.is_leaf is False
        # Frame-level access works without any entry list.
        assert len(node) == len(entries)
        assert node.child_ids() == [pointer for _, pointer in entries]
        assert node.mbr() == mbr_of(rect for rect, _ in entries)
        assert node.frame() is frame
        # First entry-level access materializes the classic list.
        assert node.entries == entries

    def test_mutating_a_frame_built_node(self, entries):
        node = Node.from_frame(NodeFrame.from_entries(True, entries))
        node.add(Rect((0, 0), (0.5, 0.5)), 123)
        assert len(node) == len(entries) + 1
        assert node.frame().entries() == list(node.entries)

    def test_remove_returns_whether_entry_existed(self, entries):
        node = Node.from_frame(NodeFrame.from_entries(True, entries))
        rect, pointer = entries[0]
        assert node.remove(rect, pointer)
        assert not node.remove(rect, pointer)
        assert len(node) == len(entries) - 1

    def test_child_ids_rejects_leaves(self, entries):
        node = Node.from_frame(NodeFrame.from_entries(True, entries))
        with pytest.raises(ValueError):
            node.child_ids()

    def test_empty_node_mbr_raises(self):
        assert len(Node(True)) == 0
        with pytest.raises(ValueError):
            Node(True).mbr()
        with pytest.raises(ValueError):
            Node.from_frame(NodeFrame.from_entries(True, [])).mbr()
