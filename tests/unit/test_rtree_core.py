"""Unit tests for Node, RTree handle and the query engine."""

import pytest

from repro.bulk.base import pack_ordered
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.node import Node
from repro.rtree.query import QueryEngine, QueryStats, brute_force_query
from repro.rtree.tree import RTree

from tests.conftest import random_rects, random_windows


class TestNode:
    def test_leaf_node(self):
        node = Node(is_leaf=True, entries=[(Rect((0, 0), (1, 1)), 5)])
        assert node.is_leaf and len(node) == 1

    def test_mbr(self):
        node = Node(
            True,
            [(Rect((0, 0), (1, 1)), 0), (Rect((2, -1), (3, 0.5)), 1)],
        )
        assert node.mbr() == Rect((0, -1), (3, 1))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(ValueError):
            Node(True).mbr()

    def test_add_remove(self):
        node = Node(True)
        node.add(Rect((0, 0), (1, 1)), 3)
        assert node.remove(Rect((0, 0), (1, 1)), 3)
        assert not node.remove(Rect((0, 0), (1, 1)), 3)
        assert len(node) == 0

    def test_child_ids_internal_only(self):
        internal = Node(False, [(Rect((0, 0), (1, 1)), 10)])
        assert internal.child_ids() == [10]
        with pytest.raises(ValueError):
            Node(True).child_ids()


class TestRTreeHandle:
    def test_create_empty(self, store):
        tree = RTree.create_empty(store, dim=2, fanout=8)
        assert len(tree) == 0 and tree.height == 1
        assert tree.root().is_leaf

    def test_invalid_fanout(self, store):
        with pytest.raises(ValueError):
            RTree(store, 0, dim=2, fanout=1, height=1, size=0)

    def test_register_object_sequential(self, store):
        tree = RTree.create_empty(store, fanout=8)
        assert tree.register_object("a") == 0
        assert tree.register_object("b") == 1
        assert tree.objects == {0: "a", 1: "b"}

    def test_iter_and_counts(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        assert tree.node_count() >= tree.leaf_count() > 0
        assert sum(1 for _ in tree.all_data()) == len(small_data)

    def test_all_data_returns_values(self, store):
        data = [(Rect((0, 0), (1, 1)), "hello")]
        tree = pack_ordered(store, data, 8)
        assert list(tree.all_data()) == [(Rect((0, 0), (1, 1)), "hello")]

    def test_query_convenience(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        window = Rect((0.2, 0.2), (0.5, 0.5))
        got = tree.query(window)
        want = brute_force_query(small_data, window)
        assert sorted(v for _, v in got) == sorted(v for _, v in want)

    def test_count_query(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        window = Rect((0.0, 0.0), (1.0, 1.0))
        assert tree.count_query(window) == len(small_data)

    def test_default_min_fill_is_forty_percent(self, store):
        tree = RTree.create_empty(store, fanout=10)
        assert tree.min_fill == 4


class TestQueryEngine:
    def test_empty_window_misses(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        engine = QueryEngine(tree)
        matches, stats = engine.query(Rect((5.0, 5.0), (6.0, 6.0)))
        assert matches == [] and stats.reported == 0

    def test_full_window_reports_all(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        engine = QueryEngine(tree)
        matches, stats = engine.query(Rect((0.0, 0.0), (1.0, 1.0)))
        assert len(matches) == len(small_data)
        assert stats.leaf_reads == tree.leaf_count()

    def test_internal_nodes_cached_across_queries(self, store, medium_data):
        tree = pack_ordered(store, medium_data, 8)
        engine = QueryEngine(tree)
        window = Rect((0.1, 0.1), (0.6, 0.6))
        _, first = engine.query(window)
        _, second = engine.query(window)
        assert first.internal_reads > 0
        assert second.internal_reads == 0  # warm cache
        assert second.leaf_reads == first.leaf_reads  # leaves always hit disk

    def test_cache_disabled_mode(self, store, medium_data):
        tree = pack_ordered(store, medium_data, 8)
        engine = QueryEngine(tree, cache_internal=False)
        window = Rect((0.1, 0.1), (0.6, 0.6))
        _, first = engine.query(window)
        _, second = engine.query(window)
        assert second.internal_reads == first.internal_reads > 0

    def test_totals_accumulate(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        engine = QueryEngine(tree)
        for window in random_windows(5, seed=3):
            engine.query(window)
        assert engine.totals.queries == 5

    def test_reset_clears_totals(self, store, small_data):
        tree = pack_ordered(store, small_data, 8)
        engine = QueryEngine(tree)
        engine.query(Rect((0, 0), (1, 1)))
        engine.reset()
        assert engine.totals.queries == 0

    def test_stats_merge(self):
        a = QueryStats(leaf_reads=1, internal_reads=2, internal_visits=3, reported=4, queries=1)
        b = QueryStats(leaf_reads=10, internal_reads=20, internal_visits=30, reported=40, queries=1)
        a.merge(b)
        assert (a.leaf_reads, a.internal_reads, a.reported, a.queries) == (11, 22, 44, 2)

    def test_stats_properties(self):
        s = QueryStats(leaf_reads=5, internal_reads=2, internal_visits=7)
        assert s.ios == 5
        assert s.total_reads == 7
        assert s.nodes_visited == 12

    def test_matches_carry_values(self, store):
        data = [(Rect((0, 0), (1, 1)), {"payload": 1})]
        tree = pack_ordered(store, data, 8)
        matches, _ = QueryEngine(tree).query(Rect((0, 0), (2, 2)))
        assert matches[0][1] == {"payload": 1}

    def test_correct_on_random_workload(self, store, medium_data):
        tree = pack_ordered(store, medium_data, 16)
        engine = QueryEngine(tree)
        for window in random_windows(25, seed=17):
            got, _ = engine.query(window)
            want = brute_force_query(medium_data, window)
            assert sorted(v for _, v in got) == sorted(v for _, v in want)


class TestPackOrdered:
    def test_empty_dataset(self, store):
        tree = pack_ordered(store, [], 8)
        assert len(tree) == 0 and tree.root().is_leaf

    def test_single_rect(self, store):
        tree = pack_ordered(store, [(Rect((0, 0), (1, 1)), "x")], 8)
        assert tree.height == 1 and len(tree) == 1

    def test_exact_fanout_boundary(self, store):
        data = random_rects(8, seed=1)
        tree = pack_ordered(store, data, 8)
        assert tree.height == 1  # exactly one full leaf
        data = random_rects(9, seed=1)
        tree = pack_ordered(BlockStore(), data, 8)
        assert tree.height == 2

    def test_all_but_last_leaf_full(self, store, medium_data):
        tree = pack_ordered(store, medium_data, 16)
        sizes = [len(leaf) for _, leaf in tree.iter_leaves()]
        assert sizes.count(16) >= len(sizes) - 1

    def test_mixed_dim_raises(self, store):
        data = [(Rect((0, 0), (1, 1)), 0), (Rect((0,), (1,)), 1)]
        with pytest.raises(ValueError):
            pack_ordered(store, data, 8)
