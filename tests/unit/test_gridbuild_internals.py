"""Unit tests for the external PR-tree builder's internals."""

import pytest

from repro.external.memory import MemoryModel
from repro.external.sort import external_sort
from repro.external.stream import BlockStream
from repro.iomodel.blockstore import BlockStore
from repro.prtree.gridbuild import (
    _axis_key,
    _distribute,
    _extract_priority,
)
from repro.geometry.rect import Rect

from tests.conftest import random_rects

MEM = MemoryModel(memory_records=64, block_records=8)


def sorted_streams(store, items, dim=2):
    base = BlockStream.from_records(store, items, 8)
    streams = [
        external_sort(base, key=_axis_key(axis, dim), memory=MEM)
        for axis in range(2 * dim)
    ]
    base.free()
    return streams


class TestAxisKey:
    def test_min_axes_ascending(self):
        a = (Rect((0.0, 0.0), (1.0, 1.0)), 1)
        b = (Rect((0.5, 0.0), (1.0, 1.0)), 2)
        assert _axis_key(0, 2)(a) < _axis_key(0, 2)(b)

    def test_max_axes_descending(self):
        # Axis 2 = xmax: the larger xmax must sort first.
        a = (Rect((0.0, 0.0), (2.0, 1.0)), 1)
        b = (Rect((0.0, 0.0), (1.0, 1.0)), 2)
        assert _axis_key(2, 2)(a) < _axis_key(2, 2)(b)

    def test_tie_break_by_id(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert _axis_key(1, 2)((r, 1)) < _axis_key(1, 2)((r, 2))


class TestExtractPriority:
    def test_takes_b_most_extreme_per_direction(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(100, seed=1)]
        streams = sorted_streams(store, items)
        leaves, claimed = _extract_priority(streams, capacity=8)
        assert len(leaves) == 4
        assert all(len(leaf) == 8 for leaf in leaves)
        assert len(claimed) == 32
        # First leaf: globally smallest xmin.
        expected = sorted(items, key=lambda it: (it[0].lo[0], it[1]))[:8]
        assert {p for _, p in leaves[0]} == {p for _, p in expected}

    def test_sequential_exclusion(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(100, seed=2)]
        streams = sorted_streams(store, items)
        leaves, _ = _extract_priority(streams, capacity=8)
        ids = [p for leaf in leaves for _, p in leaf]
        assert len(ids) == len(set(ids))  # no rectangle claimed twice

    def test_small_input_fills_fewer_leaves(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(10, seed=3)]
        streams = sorted_streams(store, items)
        leaves, claimed = _extract_priority(streams, capacity=8)
        assert len(claimed) == 10
        assert sum(len(leaf) for leaf in leaves) == 10

    def test_cheap_in_io(self):
        # Priority extraction must only touch the head blocks of each
        # stream, not scan them fully.
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(800, seed=4)]
        streams = sorted_streams(store, items)
        before = store.counters.reads
        _extract_priority(streams, capacity=8)
        reads = store.counters.reads - before
        # 4 directions x a handful of head blocks, far below a full scan
        # (a full scan of the 4 streams would be 400 reads).
        assert reads < 40


class TestDistribute:
    def test_exact_rank_split(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(200, seed=5)]
        streams = sorted_streams(store, items)
        left, right = _distribute(streams, skip=set(), split_axis=0, left_count=80, dim=2)
        assert len(left[0]) == 80
        assert len(right[0]) == 120
        # Same item sets in every ordering of each side.
        left_ids = {p for _, p in left[0].read_all()}
        for stream in left[1:]:
            assert {p for _, p in stream.read_all()} == left_ids

    def test_split_respects_order(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(150, seed=6)]
        streams = sorted_streams(store, items)
        left, right = _distribute(streams, skip=set(), split_axis=1, left_count=70, dim=2)
        key = _axis_key(1, 2)
        left_keys = [key(it) for it in left[1].read_all()]
        right_keys = [key(it) for it in right[1].read_all()]
        assert left_keys == sorted(left_keys)
        assert right_keys == sorted(right_keys)
        assert max(left_keys) <= min(right_keys)

    def test_skip_set_excluded(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(100, seed=7)]
        streams = sorted_streams(store, items)
        skip = {0, 1, 2, 3, 4}
        left, right = _distribute(streams, skip=skip, split_axis=0, left_count=40, dim=2)
        survivors = {p for _, p in left[0].read_all()} | {
            p for _, p in right[0].read_all()
        }
        assert survivors == set(range(5, 100))

    def test_inputs_freed(self):
        store = BlockStore()
        items = [(r, v) for r, v in random_rects(100, seed=8)]
        streams = sorted_streams(store, items)
        live_before = len(store)
        left, right = _distribute(streams, skip=set(), split_axis=0, left_count=50, dim=2)
        expected = sum(s.block_count for s in left) + sum(s.block_count for s in right)
        assert len(store) == expected
        assert live_before > 0  # sanity: there was something to free
