"""Unit tests for the vectorized geometry kernels.

Every kernel is exercised on both table representations — numpy arrays
(when available) and the pure-Python tuple-of-rows fallback — because
dispatch is by table type: frames built under either backend must
evaluate correctly regardless of which backend built them.  The
bit-identical claim (numpy results == scalar-loop results, exact float
equality) is asserted here at the kernel level and again end-to-end by
``tests/integration/test_vectorized_differential.py``.
"""

import math
import random

import pytest

from repro.geometry import kernels
from repro.geometry.rect import Rect, mbr_of

pytestmark = []

#: Table builders under test: always the tuple fallback, plus numpy
#: arrays when the backend is available.
BACKENDS = ["python"] + (["numpy"] if kernels.HAVE_NUMPY else [])


def make_table(rows, dim, kind):
    if kind == "numpy":
        out = kernels.np.array(rows, dtype=kernels.np.float64)
        return out.reshape(len(rows), dim)
    return tuple(tuple(float(c) for c in row) for row in rows)


def random_boxes(n, seed=0, dim=2):
    rng = random.Random(seed)
    lo_rows, hi_rows = [], []
    for _ in range(n):
        lo = [rng.uniform(0, 0.9) for _ in range(dim)]
        hi = [c + rng.uniform(0, 0.4) for c in lo]
        lo_rows.append(lo)
        hi_rows.append(hi)
    return lo_rows, hi_rows


@pytest.fixture(params=BACKENDS)
def tables(request):
    """A 40-row random frame plus a query box, in one representation."""
    kind = request.param
    lo_rows, hi_rows = random_boxes(40, seed=5)
    lo = make_table(lo_rows, 2, kind)
    hi = make_table(hi_rows, 2, kind)
    return kind, lo_rows, hi_rows, lo, hi


QUERY = ((0.2, 0.3), (0.7, 0.8))


class TestScalarKernels:
    def test_intersects_matches_interval_logic(self):
        assert kernels.intersects((0, 0), (1, 1), (1, 1), (2, 2))  # corner touch
        assert not kernels.intersects((0, 0), (1, 1), (1.01, 0), (2, 1))
        assert kernels.intersects((0, 0), (2, 2), (0.5, 0.5), (1, 1))

    def test_contains_and_contains_point(self):
        assert kernels.contains((0, 0), (2, 2), (0.5, 0.5), (1, 1))
        assert not kernels.contains((0, 0), (2, 2), (0.5, 0.5), (3, 1))
        assert kernels.contains_point((0, 0), (1, 1), (1.0, 0.0))  # boundary
        assert not kernels.contains_point((0, 0), (1, 1), (1.5, 0.5))

    def test_distances(self):
        assert kernels.dist_sq_to_point((0, 0), (1, 1), (0.5, 0.5)) == 0.0
        assert kernels.dist_sq_to_point((0, 0), (1, 1), (2.0, 1.0)) == 1.0
        assert kernels.dist_sq_to_rect((0, 0), (1, 1), (2, 2), (3, 3)) == 2.0
        assert kernels.dist_sq_to_rect((0, 0), (1, 1), (0.5, 0), (2, 1)) == 0.0

    def test_area_and_enlargement_match_rect_methods(self):
        a = Rect((0.0, 0.0), (2.0, 1.0))
        b = Rect((1.0, 0.5), (3.0, 3.0))
        assert kernels.area(a.lo, a.hi) == a.area()
        want = a.union(b).area() - a.area()
        assert kernels.enlargement(a.lo, a.hi, b.lo, b.hi) == want


class TestFrameKernels:
    def test_frame_intersecting_matches_scalar(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        q_lo, q_hi = QUERY
        got = kernels.frame_intersecting(lo, hi, q_lo, q_hi)
        want = [
            i
            for i in range(len(lo_rows))
            if kernels.intersects(lo_rows[i], hi_rows[i], q_lo, q_hi)
        ]
        assert got == want

    def test_frame_containing_point_matches_scalar(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        p = (0.45, 0.55)
        got = kernels.frame_containing_point(lo, hi, p)
        want = [
            i
            for i in range(len(lo_rows))
            if kernels.contains_point(lo_rows[i], hi_rows[i], p)
        ]
        assert got == want

    def test_frame_contained_in_matches_scalar(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        q_lo, q_hi = (0.1, 0.1), (0.9, 0.9)
        got = kernels.frame_contained_in(lo, hi, q_lo, q_hi)
        want = [
            i
            for i in range(len(lo_rows))
            if kernels.contains(q_lo, q_hi, lo_rows[i], hi_rows[i])
        ]
        assert got == want
        assert got  # the window is big enough that the test is not vacuous

    def test_frame_count_matches_index_list(self, tables):
        _, _, _, lo, hi = tables
        q_lo, q_hi = QUERY
        assert kernels.frame_count_intersecting(lo, hi, q_lo, q_hi) == len(
            kernels.frame_intersecting(lo, hi, q_lo, q_hi)
        )

    def test_frame_dist_sq_to_point_bit_identical(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        p = (1.7, -0.3)
        got = kernels.frame_dist_sq_to_point(lo, hi, p)
        want = [
            kernels.dist_sq_to_point(lo_rows[i], hi_rows[i], p)
            for i in range(len(lo_rows))
        ]
        assert got == want  # exact float equality, not approx

    def test_frame_dist_sq_to_rect_bit_identical(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        q_lo, q_hi = (1.2, 1.2), (1.5, 1.6)
        got = kernels.frame_dist_sq_to_rect(lo, hi, q_lo, q_hi)
        want = [
            kernels.dist_sq_to_rect(lo_rows[i], hi_rows[i], q_lo, q_hi)
            for i in range(len(lo_rows))
        ]
        assert got == want

    def test_frame_enlargement_bit_identical(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        q_lo, q_hi = QUERY
        got = kernels.frame_enlargement(lo, hi, q_lo, q_hi)
        want = [
            kernels.enlargement(lo_rows[i], hi_rows[i], q_lo, q_hi)
            for i in range(len(lo_rows))
        ]
        assert got == want

    def test_frame_mbr_matches_mbr_of(self, tables):
        _, lo_rows, hi_rows, lo, hi = tables
        got_lo, got_hi = kernels.frame_mbr(lo, hi)
        want = mbr_of(
            Rect(lo_rows[i], hi_rows[i]) for i in range(len(lo_rows))
        )
        assert (got_lo, got_hi) == (want.lo, want.hi)

    def test_empty_frames(self):
        for kind in BACKENDS:
            lo = make_table([], 2, kind)
            hi = make_table([], 2, kind)
            assert kernels.frame_intersecting(lo, hi, (0, 0), (1, 1)) == []
            assert kernels.frame_containing_point(lo, hi, (0, 0)) == []
            assert kernels.frame_contained_in(lo, hi, (0, 0), (1, 1)) == []
            assert kernels.frame_count_intersecting(lo, hi, (0, 0), (1, 1)) == 0
            assert kernels.frame_dist_sq_to_point(lo, hi, (0, 0)) == []
            assert kernels.frame_dist_sq_to_rect(lo, hi, (0, 0), (1, 1)) == []
            assert kernels.frame_enlargement(lo, hi, (0, 0), (1, 1)) == []
            with pytest.raises(ValueError):
                kernels.frame_mbr(lo, hi)

    @pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="needs numpy")
    def test_frame_pair_mask_matches_pairwise_intersects(self):
        a_lo_rows, a_hi_rows = random_boxes(12, seed=1)
        b_lo_rows, b_hi_rows = random_boxes(9, seed=2)
        mask = kernels.frame_pair_mask(
            make_table(a_lo_rows, 2, "numpy"),
            make_table(a_hi_rows, 2, "numpy"),
            make_table(b_lo_rows, 2, "numpy"),
            make_table(b_hi_rows, 2, "numpy"),
        )
        assert mask.shape == (12, 9)
        for i in range(12):
            for j in range(9):
                assert bool(mask[i, j]) == kernels.intersects(
                    a_lo_rows[i], a_hi_rows[i], b_lo_rows[j], b_hi_rows[j]
                )

    def test_frame_pair_mask_fallback_returns_none(self):
        a_lo_rows, a_hi_rows = random_boxes(3, seed=1)
        assert (
            kernels.frame_pair_mask(
                make_table(a_lo_rows, 2, "python"),
                make_table(a_hi_rows, 2, "python"),
                make_table(a_lo_rows, 2, "python"),
                make_table(a_hi_rows, 2, "python"),
            )
            is None
        )


class TestBatchKernels:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_batch_matches_per_query_frame_scans(self, kind):
        lo_rows, hi_rows = random_boxes(30, seed=9)
        lo = make_table(lo_rows, 2, kind)
        hi = make_table(hi_rows, 2, kind)
        windows = [
            Rect((0.1, 0.1), (0.4, 0.4)),
            Rect((0.5, 0.5), (0.9, 0.9)),
            Rect((2.0, 2.0), (3.0, 3.0)),  # matches nothing
        ]
        q_lo, q_hi = kernels.batch_windows(windows, 2)
        if kind == "python" and kernels.HAVE_NUMPY:
            # Force the fallback pairing: tuple query tables too.
            q_lo = make_table([w.lo for w in windows], 2, "python")
            q_hi = make_table([w.hi for w in windows], 2, "python")
        got = kernels.batch_intersecting(lo, hi, q_lo, q_hi, [0, 1, 2])
        for q, w in enumerate(windows):
            want = kernels.frame_intersecting(lo, hi, w.lo, w.hi)
            if want:
                assert got[q] == want
            else:
                assert q not in got

    def test_batch_respects_active_subset(self):
        lo_rows, hi_rows = random_boxes(20, seed=3)
        lo = make_table(lo_rows, 2, BACKENDS[-1])
        hi = make_table(hi_rows, 2, BACKENDS[-1])
        windows = [Rect((0, 0), (1, 1)), Rect((0, 0), (1, 1))]
        q_lo, q_hi = kernels.batch_windows(windows, 2)
        got = kernels.batch_intersecting(lo, hi, q_lo, q_hi, [1])
        assert set(got) == {1}
        assert got[1] == list(range(20))

    def test_batch_empty_frame(self):
        windows = [Rect((0, 0), (1, 1))]
        q_lo, q_hi = kernels.batch_windows(windows, 2)
        lo = make_table([], 2, BACKENDS[-1])
        hi = make_table([], 2, BACKENDS[-1])
        assert kernels.batch_intersecting(lo, hi, q_lo, q_hi, [0]) == {}


class TestTables:
    def test_coord_table_round_trip(self):
        rows = [(0.25, 0.5), (0.75, 1.0)]
        for kind in BACKENDS:
            table = make_table(rows, 2, kind)
            assert kernels.table_len(table) == 2
            assert kernels.table_row(table, 1) == (0.75, 1.0)
            assert isinstance(kernels.table_row(table, 0)[0], float)
            assert kernels.table_column(table, 0) == [0.25, 0.75]

    def test_coord_table_uses_active_backend(self):
        table = kernels.coord_table([(0.0, 1.0)], 2)
        if kernels.HAVE_NUMPY:
            assert isinstance(table, kernels.np.ndarray)
            assert table.shape == (1, 2)
        else:
            assert table == ((0.0, 1.0),)
        empty = kernels.coord_table([], 3)
        assert kernels.table_len(empty) == 0

    def test_backend_tag_consistent(self):
        assert kernels.BACKEND == (
            "numpy" if kernels.HAVE_NUMPY else "python"
        )


class TestKernelPhases:
    def test_kernels_push_their_phase_when_profiling(self, monkeypatch):
        events = []

        def fake_push(name):
            events.append(("push", name))
            return True

        monkeypatch.setattr(kernels, "push_phase", fake_push)
        monkeypatch.setattr(
            kernels, "pop_phase", lambda: events.append(("pop", None))
        )
        lo_rows, hi_rows = random_boxes(4, seed=0)
        lo = make_table(lo_rows, 2, BACKENDS[-1])
        hi = make_table(hi_rows, 2, BACKENDS[-1])
        kernels.frame_intersecting(lo, hi, (0, 0), (1, 1))
        assert events == [
            ("push", "kernel:frame_intersecting"),
            ("pop", None),
        ]

    def test_kernels_skip_phase_bookkeeping_when_idle(self, monkeypatch):
        pops = []
        monkeypatch.setattr(kernels, "push_phase", lambda name: False)
        monkeypatch.setattr(kernels, "pop_phase", lambda: pops.append(1))
        lo_rows, hi_rows = random_boxes(4, seed=0)
        lo = make_table(lo_rows, 2, BACKENDS[-1])
        hi = make_table(hi_rows, 2, BACKENDS[-1])
        kernels.frame_intersecting(lo, hi, (0, 0), (1, 1))
        assert pops == []

    def test_vocabulary_lists_kernel_prefix(self):
        from repro.obs.profiler import PHASE_VOCABULARY

        assert "kernel:*" in PHASE_VOCABULARY

    def test_wrapped_kernels_keep_their_names(self):
        assert kernels.frame_intersecting.__name__ == "frame_intersecting"
        assert kernels.frame_intersecting.__wrapped__ is not None


@pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="needs numpy")
class TestCrossBackendBitIdentity:
    """numpy and tuple tables produce exactly equal floats."""

    def test_distance_and_enlargement_values(self):
        lo_rows, hi_rows = random_boxes(64, seed=17, dim=3)
        lo_np = make_table(lo_rows, 3, "numpy")
        hi_np = make_table(hi_rows, 3, "numpy")
        lo_py = make_table(lo_rows, 3, "python")
        hi_py = make_table(hi_rows, 3, "python")
        p = (1.3, -0.2, 0.7)
        q_lo, q_hi = (0.4, 0.4, 0.4), (0.6, 0.6, 0.6)
        assert kernels.frame_dist_sq_to_point(
            lo_np, hi_np, p
        ) == kernels.frame_dist_sq_to_point(lo_py, hi_py, p)
        assert kernels.frame_dist_sq_to_rect(
            lo_np, hi_np, q_lo, q_hi
        ) == kernels.frame_dist_sq_to_rect(lo_py, hi_py, q_lo, q_hi)
        assert kernels.frame_enlargement(
            lo_np, hi_np, q_lo, q_hi
        ) == kernels.frame_enlargement(lo_py, hi_py, q_lo, q_hi)
        assert kernels.frame_mbr(lo_np, hi_np) == kernels.frame_mbr(
            lo_py, hi_py
        )

    def test_predicates_and_distances_vs_math(self):
        # Sanity: the shared arithmetic really is the textbook formulas.
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.min_dist_to_point((2.0, 1.0)) == 1.0
        assert r.min_dist_to_rect(Rect((2, 2), (3, 3))) == math.sqrt(2.0)
