"""IOTap semantics: context scoping, fold roll-up, trace crediting.

The attribution invariant the storage hooks rely on lives here in
miniature: every increment lands on exactly one tap, child scopes fold
into their parent exactly once, and a scope opened for a trace credits
the trace's ledger exactly once — never twice, never zero times —
regardless of nesting or thread hops (docs/observability.md).
"""

import contextvars
import threading

from repro.obs import IOTap, Trace, active_tap, install_tap, scoped_tap


def bump(tap, reads=0, writes=0, hits=0, misses=0, evictions=0, flushes=0):
    tap.reads += reads
    tap.writes += writes
    tap.hits += hits
    tap.misses += misses
    tap.evictions += evictions
    tap.flushes += flushes


class TestActiveTap:
    def test_no_tap_by_default(self):
        assert active_tap() is None

    def test_install_and_reset(self):
        tap = IOTap()
        with install_tap(tap):
            assert active_tap() is tap
        assert active_tap() is None

    def test_install_none_suspends_attribution(self):
        outer = IOTap()
        with install_tap(outer):
            with install_tap(None):
                assert active_tap() is None
            assert active_tap() is outer

    def test_scoped_tap_is_fresh_and_active(self):
        with scoped_tap() as tap:
            assert active_tap() is tap
            assert tap.snapshot() == {
                "reads": 0,
                "writes": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "flushes": 0,
            }
        assert active_tap() is None


class TestFolding:
    def test_child_folds_into_parent_on_exit(self):
        with scoped_tap() as parent:
            with scoped_tap() as child:
                bump(child, reads=3, misses=1)
            # Child totals rolled up; parent was isolated meanwhile.
            assert parent.reads == 3
            assert parent.misses == 1
            bump(parent, writes=2)
        assert parent.writes == 2

    def test_fold_is_additive(self):
        parent = IOTap()
        child = IOTap()
        bump(child, reads=1, writes=2, hits=3, misses=4, evictions=5, flushes=6)
        parent.fold(child)
        parent.fold(child)
        assert parent.snapshot() == {
            "reads": 2,
            "writes": 4,
            "hits": 6,
            "misses": 8,
            "evictions": 10,
            "flushes": 12,
        }

    def test_physical_aliases(self):
        tap = IOTap()
        bump(tap, reads=5, writes=2, misses=3, flushes=4)
        assert tap.physical_reads == 3
        assert tap.physical_writes == 4
        assert tap.logical_ios == 7


class TestTraceCrediting:
    def test_scope_with_trace_credits_trace_ledger(self):
        trace = Trace(1, "t", "window", sampled=True)
        with scoped_tap(trace) as tap:
            bump(tap, reads=4, misses=2)
        assert trace.io.reads == 4
        assert trace.io.misses == 2

    def test_nested_scopes_credit_trace_exactly_once(self):
        # A nested scope inherits the trace; only the outermost scope of
        # the trace may credit trace.io, or I/O would double-count.
        trace = Trace(1, "t", "window", sampled=True)
        with scoped_tap(trace) as outer:
            with scoped_tap() as inner:
                assert inner.trace is trace
                bump(inner, reads=7)
            assert outer.reads == 7
        assert trace.io.reads == 7

    def test_thread_hop_credits_trace_without_parent(self):
        # The executor-thread idiom: copy_context + scoped_tap on the
        # far side.  The hopped scope has no parent tap in its context,
        # so it credits the trace directly.
        trace = Trace(1, "t", "window", sampled=True)

        def far_side():
            with scoped_tap(trace) as tap:
                bump(tap, reads=2, misses=1)

        ctx = contextvars.copy_context()
        thread = threading.Thread(target=ctx.run, args=(far_side,))
        thread.start()
        thread.join()
        assert trace.io.reads == 2
        assert trace.io.misses == 1

    def test_concurrent_children_fold_exactly(self):
        # Many threads, each owning its tap, all rolling up into one
        # parent under its lock: the sum is exact.
        with scoped_tap() as parent:

            def work(n):
                with scoped_tap() as tap:
                    for _ in range(n):
                        tap.reads += 1

            ctxs = [contextvars.copy_context() for _ in range(8)]
            threads = [
                threading.Thread(target=ctx.run, args=(work, 100))
                for ctx in ctxs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert parent.reads == 800
