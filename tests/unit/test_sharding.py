"""Unit tests for Hilbert-range sharded indexes.

Covers :func:`repro.storage.shard.shard_pack` round-trips, the manifest
hardening contract (corrupt / truncated manifests rejected with clear
errors, shard-file count and MBR mismatches detected on open — the
sharded mirror of the persist corrupt-image tests), read-only families
rejecting updates up front, and the fan-out engines against brute-force
oracles.
"""

import json

import pytest

from repro.datasets.synthetic import uniform_rects
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.knn import brute_force_knn
from repro.queries.point import (
    brute_force_containment,
    brute_force_point_query,
)
from repro.rtree.query import brute_force_query
from repro.rtree.validate import validate_rtree
from repro.storage import (
    PagedTree,
    ShardError,
    ShardedJoinEngine,
    ShardedKNNEngine,
    ShardedPointEngine,
    ShardedQueryEngine,
    ShardedTree,
    StorageError,
    open_index,
    pack_tree,
    shard_pack,
)

N = 1200
FANOUT = 16


@pytest.fixture()
def data():
    return uniform_rects(N, max_side=0.02, seed=3)


@pytest.fixture()
def tree(data):
    return build_prtree(BlockStore(), data, FANOUT)


@pytest.fixture()
def manifest(tmp_path, tree):
    path = tmp_path / "family.manifest"
    shard_pack(tree, path, shards=4)
    return path


def open_family(manifest, tree, **kwargs):
    return ShardedTree.open(manifest, values=dict(tree.objects), **kwargs)


class TestShardPack:
    def test_partitions_all_entries_across_shards(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            assert family.n_shards == 4
            assert family.size == N
            assert sum(shard.size for shard in family.shards) == N
            # Near-equal cardinality split.
            sizes = [shard.size for shard in family.shards]
            assert max(sizes) - min(sizes) <= 1
            for shard in family.shards:
                validate_rtree(shard)
            assert sorted(v for _, v in family.all_data()) == sorted(
                v for _, v in data
            )

    def test_hilbert_ranges_are_contiguous(self, manifest, tree):
        with open_family(manifest, tree) as family:
            infos = family.infos
            for info in infos:
                assert info.hilbert_lo <= info.hilbert_hi
            for prev, cur in zip(infos, infos[1:]):
                assert prev.hilbert_hi <= cur.hilbert_lo

    def test_shard_count_clamped_to_entries(self, tmp_path):
        small = uniform_rects(3, seed=1)
        tree = build_prtree(BlockStore(), small, FANOUT)
        path = tmp_path / "tiny.manifest"
        stats = shard_pack(tree, path, shards=10)
        assert stats.shards == 3
        with ShardedTree.open(path, values=dict(tree.objects)) as family:
            assert family.n_shards == 3
            assert family.size == 3

    def test_single_shard_family(self, tmp_path, tree, data):
        path = tmp_path / "one.manifest"
        stats = shard_pack(tree, path, shards=1)
        assert stats.shards == 1
        with open_family(path, tree) as family:
            window = Rect((0.2, 0.2), (0.6, 0.6))
            got, _ = ShardedQueryEngine(family).query(window)
            assert sorted(v for _, v in got) == sorted(
                v for _, v in brute_force_query(data, window)
            )

    def test_rejects_nonpositive_shards(self, tmp_path, tree):
        with pytest.raises(ValueError, match="shards"):
            shard_pack(tree, tmp_path / "x.manifest", shards=0)

    def test_pack_stats_aggregate(self, manifest, tree, tmp_path):
        stats = shard_pack(tree, tmp_path / "again.manifest", shards=4)
        assert stats.write_ios == sum(s.write_ios for s in stats.per_shard)
        assert stats.file_bytes == sum(s.file_bytes for s in stats.per_shard)
        assert stats.size == N


class TestManifestHardening:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match="no shard manifest"):
            ShardedTree.open(tmp_path / "nope.manifest")

    def test_invalid_json_rejected(self, manifest):
        manifest.write_text("this is not json {")
        with pytest.raises(ShardError, match="invalid JSON"):
            ShardedTree.open(manifest)

    def test_truncated_manifest_rejected(self, manifest):
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])
        with pytest.raises(ShardError, match="invalid JSON"):
            ShardedTree.open(manifest)

    def test_foreign_json_rejected(self, manifest):
        manifest.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ShardError, match="not a shard manifest"):
            ShardedTree.open(manifest)

    def test_unsupported_version_rejected(self, manifest):
        doc = json.loads(manifest.read_text())
        doc["version"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="version"):
            ShardedTree.open(manifest)

    def test_missing_key_rejected(self, manifest):
        doc = json.loads(manifest.read_text())
        del doc["next_oid"]
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="missing 'next_oid'"):
            ShardedTree.open(manifest)

    def test_shard_file_count_mismatch_detected(self, manifest):
        doc = json.loads(manifest.read_text())
        doc["shard_files"].pop()
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="count mismatch"):
            ShardedTree.open(manifest)

    def test_missing_shard_file_detected(self, manifest):
        doc = json.loads(manifest.read_text())
        victim = manifest.with_name(doc["shard_files"][2]["file"])
        victim.unlink()
        with pytest.raises(ShardError, match="shard 2"):
            ShardedTree.open(manifest)

    def test_mbr_mismatch_detected(self, manifest):
        doc = json.loads(manifest.read_text())
        doc["shard_files"][1]["mbr"]["hi"][0] += 10.0
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="MBR mismatch"):
            ShardedTree.open(manifest)

    def test_size_mismatch_detected(self, manifest):
        doc = json.loads(manifest.read_text())
        doc["shard_files"][0]["size"] += 5
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="entries"):
            ShardedTree.open(manifest)

    def test_total_size_mismatch_detected(self, manifest):
        doc = json.loads(manifest.read_text())
        doc["size"] += 7
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="promises"):
            ShardedTree.open(manifest)

    def test_swapped_shard_file_detected(self, manifest):
        # Pointing one manifest entry at a sibling shard's file must trip
        # the cross-checks (size or MBR) rather than open silently.
        doc = json.loads(manifest.read_text())
        doc["shard_files"][0]["file"] = doc["shard_files"][3]["file"]
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ShardError):
            ShardedTree.open(manifest)

    def test_shard_error_is_a_storage_error(self):
        assert issubclass(ShardError, StorageError)


class TestReadonlyFamilies:
    def test_readonly_rejects_insert_and_delete(self, manifest, tree, data):
        with open_family(manifest, tree, readonly=True) as family:
            assert family.readonly
            rect, value = data[0]
            with pytest.raises(StorageError, match="read-only"):
                family.insert(rect, "new")
            with pytest.raises(StorageError, match="read-only"):
                family.delete(rect, value)
            # Reads still work, and sync is a no-op.
            assert family.count_query(rect) >= 1
            assert family.sync() == 0

    def test_readonly_leaves_manifest_untouched(self, manifest, tree):
        before = manifest.read_text()
        with open_family(manifest, tree, readonly=True):
            pass
        assert manifest.read_text() == before


class TestShardedEngines:
    def test_window_matches_brute_force(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            engine = ShardedQueryEngine(family)
            for window in (
                Rect((0.1, 0.1), (0.4, 0.3)),
                Rect((0.0, 0.0), (1.0, 1.0)),
                Rect((0.95, 0.95), (0.96, 0.96)),
            ):
                got, stats = engine.query(window)
                want = brute_force_query(data, window)
                assert sorted(v for _, v in got) == sorted(
                    v for _, v in want
                )
                assert stats.queries == 1
                assert stats.reported == len(want)

    def test_fanout_skips_nonintersecting_shards(self, manifest, tree):
        with open_family(manifest, tree) as family:
            engine = ShardedQueryEngine(family)
            # A window inside a single shard's MBR only reads that shard.
            target = family.shard_mbr(0)
            lone = Rect(target.lo, target.lo)
            engine.query(lone)
            touched = [
                i
                for i, totals in enumerate(engine.per_shard_totals())
                if totals.queries > 0
            ]
            assert touched  # someone answered
            untouched_mbrs = [
                family.shard_mbr(i)
                for i in range(family.n_shards)
                if i not in touched
            ]
            assert all(
                not mbr.intersects(lone) for mbr in untouched_mbrs if mbr
            )

    def test_point_count_containment_match_brute_force(
        self, manifest, tree, data
    ):
        with open_family(manifest, tree) as family:
            engine = ShardedPointEngine(family)
            window = Rect((0.2, 0.3), (0.7, 0.8))
            count, _ = engine.count(window)
            assert count == len(brute_force_query(data, window))
            got, _ = engine.containment_query(window)
            assert sorted(v for _, v in got) == sorted(
                v for _, v in brute_force_containment(data, window)
            )
            point = (0.5, 0.5)
            got, _ = engine.point_query(point)
            assert sorted(v for _, v in got) == sorted(
                v for _, v in brute_force_point_query(data, point)
            )

    def test_knn_streams_merge_in_distance_order(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            engine = ShardedKNNEngine(family)
            for target in ((0.5, 0.5), (0.0, 1.0), (0.99, 0.01)):
                got, stats = engine.knn(target, 15)
                want = brute_force_knn(data, target, 15)
                assert [n.distance for n in got] == pytest.approx(
                    [n.distance for n in want]
                )
                distances = [n.distance for n in got]
                assert distances == sorted(distances)
                assert stats.queries == 1

    def test_knn_lazy_streams_skip_far_shards(self, manifest, tree):
        with open_family(manifest, tree) as family:
            engine = ShardedKNNEngine(family)
            # One neighbor of a corner point should not open every shard.
            corner = family.shard_mbr(0).lo
            engine.knn(corner, 1)
            opened = sum(
                1 for t in engine.per_shard_totals() if t.queries > 0
            )
            assert opened < family.n_shards

    def test_join_sharded_vs_plain_sides(self, manifest, tree, data):
        minor_data = uniform_rects(150, max_side=0.05, seed=9)
        minor = build_prtree(BlockStore(), minor_data, FANOUT)
        expected = sorted(
            (va, vb)
            for ra, va in data
            for rb, vb in minor_data
            if ra.intersects(rb)
        )
        with open_family(manifest, tree) as family:
            pairs, stats = ShardedJoinEngine(family, minor).join()
            assert (
                sorted((a[1], b[1]) for a, b in pairs) == expected
            )
            assert stats.pairs == len(expected)
            # Sharded on the right as well.
            pairs, _ = ShardedJoinEngine(minor, family).join()
            assert (
                sorted((b[1], a[1]) for a, b in pairs) == expected
            )
            # Sharded self-join reports ordered pairs like the plain one.
            pairs, _ = ShardedJoinEngine(family, family).join()
            self_expected = sorted(
                (va, vb)
                for ra, va in data
                for rb, vb in data
                if ra.intersects(rb)
            )
            assert (
                sorted((a[1], b[1]) for a, b in pairs) == self_expected
            )

    def test_parallel_fanout_matches_serial(self, manifest, tree, data):
        window = Rect((0.1, 0.1), (0.9, 0.9))
        with open_family(manifest, tree) as family:
            serial, _ = ShardedQueryEngine(family, workers=1).query(window)
            threaded, _ = ShardedQueryEngine(family, workers=4).query(window)
            assert serial == threaded  # shard-order merge is deterministic

    def test_dimension_mismatch_raises(self, manifest, tree):
        with open_family(manifest, tree) as family:
            bad = Rect((0, 0, 0), (1, 1, 1))
            with pytest.raises(ValueError, match="3-d"):
                ShardedQueryEngine(family).query(bad)
            with pytest.raises(ValueError, match="3-d"):
                ShardedKNNEngine(family).knn((0.0, 0.0, 0.0), 3)
            with pytest.raises(ValueError, match="3-d"):
                ShardedPointEngine(family).point_query((0.0, 0.0, 0.0))
            with pytest.raises(ValueError, match="3-d"):
                family.route(bad)


class TestUpdatesAndSync:
    def test_insert_routes_to_owning_shard(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            rect = Rect((0.25, 0.25), (0.26, 0.26))
            owner = family.route(rect)
            before = [shard.size for shard in family.shards]
            oid = family.insert(rect, "routed")
            assert oid == N  # family-wide ids continue the packed space
            after = [shard.size for shard in family.shards]
            assert after[owner] == before[owner] + 1
            assert sum(after) == N + 1 == family.size
            # The same rectangle always routes identically.
            assert family.route(rect) == owner

    def test_delete_broadcasts_and_updates_size(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            rect, value = data[37]
            assert family.delete(rect, value)
            assert family.size == N - 1
            assert not family.delete(rect, value)  # already gone
            assert family.size == N - 1

    def test_sync_rewrites_manifest_atomically(self, manifest, tree, data):
        with open_family(manifest, tree) as family:
            family.insert(Rect((0.5, 0.5), (0.51, 0.51)), "fresh")
            family.delete(*data[0])
            flushed = family.sync()
            assert flushed > 0
            doc = json.loads(manifest.read_text())
            assert doc["size"] == N  # +1 insert, -1 delete
            assert doc["next_oid"] == N + 1
            assert sum(e["size"] for e in doc["shard_files"]) == N
            assert not manifest.with_name(
                manifest.name + ".tmp"
            ).exists()

    def test_cold_reopen_after_updates(self, manifest, tree, data):
        fresh = uniform_rects(40, max_side=0.02, seed=11)
        with open_family(manifest, tree) as family:
            for rect, value in fresh:
                family.insert(rect, value)
            for pair in data[:40]:
                assert family.delete(*pair)
            merged = {}
            for shard in family.shards:
                merged.update(shard.objects)
        live = data[40:] + fresh
        with ShardedTree.open(
            manifest, values=merged, readonly=True
        ) as family:
            for shard in family.shards:
                validate_rtree(shard)
            assert family.size == N
            window = Rect((0.0, 0.0), (1.0, 1.0))
            got, _ = ShardedQueryEngine(family).query(window)
            assert sorted(v for _, v in got) == sorted(v for _, v in live)

    def test_close_is_idempotent(self, manifest, tree):
        family = open_family(manifest, tree)
        family.close()
        family.close()


class TestOpenIndex:
    def test_open_index_sniffs_both_shapes(self, tmp_path, tree, manifest):
        single = tmp_path / "single.pack"
        pack_tree(tree, single)
        with open_index(single) as handle:
            assert isinstance(handle, PagedTree)
        with open_index(manifest) as handle:
            assert isinstance(handle, ShardedTree)

    def test_open_index_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no index file"):
            open_index(tmp_path / "ghost.pack")


class TestMmapFamilies:
    def test_open_index_mmap_plumbs_to_every_shard(self, tree, manifest):
        with open_index(
            manifest, values=dict(tree.objects), readonly=True, mmap=True
        ) as family:
            assert isinstance(family, ShardedTree)
            assert all(
                shard.page_store.file_store.mmapped
                for shard in family.shards
            )
            plain = ShardedTree.open(
                manifest, values=dict(tree.objects), readonly=True
            )
            try:
                window = tree.root().mbr()
                got = sorted(family.query(window), key=lambda rv: rv[1])
                want = sorted(plain.query(window), key=lambda rv: rv[1])
                assert got == want
            finally:
                plain.close()
