"""Unit tests for pack_tree, PagedNodeStore, and PagedTree."""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockStoreProtocol
from repro.prtree.prtree import build_prtree
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.persist import PersistError
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.storage import (
    FileBlockStore,
    PagedNodeStore,
    PagedTree,
    StorageError,
    pack_tree,
)

from tests.conftest import assert_same_matches, random_rects, random_windows


@pytest.fixture
def packed(tmp_path):
    """A PR-tree packed to disk, plus the in-memory original."""
    data = random_rects(800, seed=21)
    tree = build_prtree(BlockStore(), data, 16)
    path = tmp_path / "index.pack"
    stats = pack_tree(tree, path, block_size=4096)
    return tree, path, stats, data


class TestPackTree:
    def test_stats_match_tree(self, packed):
        tree, path, stats, _ = packed
        assert stats.n_blocks == tree.node_count()
        assert stats.size == tree.size
        assert stats.height == tree.height
        # Node blocks plus the committed shadow map, matching the file.
        assert stats.file_bytes > 4096 + stats.n_blocks * 4096
        assert stats.file_bytes == path.stat().st_size
        assert stats.commit_epoch == 1

    def test_pack_is_sequential_io(self, tmp_path):
        data = random_rects(300, seed=22)
        tree = build_hilbert(BlockStore(), data, 8)
        stats = pack_tree(tree, tmp_path / "seq.pack", block_size=512)
        # Packing writes blocks 0..n-1 in order: one write per node, all
        # but the first following its predecessor.
        assert stats.write_ios == stats.n_blocks
        assert stats.seq_writes == stats.n_blocks - 1

    def test_fanout_too_large_for_block(self, tmp_path):
        data = random_rects(400, seed=23)
        tree = build_hilbert(BlockStore(), data, 200)  # 200 > 113
        with pytest.raises(PersistError):
            pack_tree(tree, tmp_path / "x.pack", block_size=4096)

    def test_pack_single_leaf_tree(self, tmp_path):
        data = random_rects(3, seed=24)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "leaf.pack"
        pack_tree(tree, path)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            validate_rtree(paged, expect_size=3)


class TestPagedNodeStore:
    def _store(self, path, capacity=4):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        pack_tree(tree, path, block_size=512)
        file_store = FileBlockStore.open(path)
        return PagedNodeStore(file_store, dim=2, capacity=capacity)

    def test_satisfies_store_protocol(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        assert isinstance(store, BlockStoreProtocol)

    def test_cache_bounded(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=4)
        for bid in list(store.block_ids())[:20]:
            store.read(bid)
        assert store.cached_pages() <= 4
        assert store.stats.evictions >= 16

    def test_read_counts_even_on_page_hit(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=4)
        bid = next(store.block_ids())
        store.read(bid)
        store.read(bid)  # page hit, still one logical I/O
        assert store.counters.reads == 2
        assert store.stats.misses == 1
        assert store.stats.hits == 1

    def test_peek_costs_no_logical_io(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        before = store.counters.total
        store.peek(next(store.block_ids()))
        assert store.counters.total == before

    def test_zero_capacity_always_decodes(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=0)
        a, b = list(store.block_ids())[:2]
        store.peek(a)
        store.peek(b)
        store.peek(a)  # the single pinned MRU slot now holds b
        assert store.stats.misses == 3
        assert store.cached_pages() == 0

    def test_repeated_access_costs_one_physical_read_even_cold(self, tmp_path):
        # Engines peek a node's kind then read the same block; that pair
        # must cost one physical read even with no page cache at all.
        store = self._store(tmp_path / "p.pack", capacity=0)
        bid = next(store.block_ids())
        store.peek(bid)
        store.read(bid)
        assert store.stats.misses == 1
        assert store.counters.reads == 1

    def test_zero_capacity_logical_equals_physical_io(self, tmp_path):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "cold.pack"
        pack_tree(tree, path, block_size=512)
        with PagedTree.open(path, cache_pages=0) as paged:
            engine = QueryEngine(paged, cache_internal=False)
            for window in random_windows(3, seed=29):
                engine.query(window)
            totals = engine.totals
            assert (
                paged.page_stats.physical_reads
                == totals.leaf_reads + totals.internal_reads
            )

    def test_clear_cache_goes_cold(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        bid = next(store.block_ids())
        store.peek(bid)
        store.clear_cache()
        store.peek(bid)
        assert store.stats.misses == 2

    def test_write_roundtrips_through_codec(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        from repro.rtree.node import Node

        bid = store.allocate(Node(True, [(Rect((0, 0), (1, 1)), 7)]))
        store.clear_cache()
        node = store.peek(bid)
        assert node.is_leaf and node.entries == [(Rect((0, 0), (1, 1)), 7)]

    def test_negative_capacity_rejected(self, tmp_path):
        file_store = FileBlockStore.create(tmp_path / "n.fbs", block_size=512)
        with pytest.raises(ValueError):
            PagedNodeStore(file_store, dim=2, capacity=-1)
        file_store.close()


class TestPeekReadsAroundCache:
    """Regression: peek used to insert pages, evict hot ones and bump
    LRU recency — a whole-tree validation walk could flush the working
    set a query workload had warmed."""

    def _store(self, path, capacity=4):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        pack_tree(tree, path, block_size=512)
        file_store = FileBlockStore.open(path)
        return PagedNodeStore(file_store, dim=2, capacity=capacity)

    def test_peek_miss_does_not_insert_or_evict(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=4)
        hot = list(store.block_ids())[:4]
        for bid in hot:
            store.read(bid)
        assert store.cached_pages() == 4
        # Peek every other block: a flood bigger than the cache.
        for bid in store.block_ids():
            store.peek(bid)
        assert store.cached_pages() == 4
        assert store.stats.evictions == 0
        # The hot set is untouched: re-reading it costs no decode.
        misses_before = store.stats.misses
        for bid in hot:
            store.read(bid)
        assert store.stats.misses == misses_before

    def test_peek_hit_does_not_bump_recency(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=2)
        a, b, c = list(store.block_ids())[:3]
        store.read(a)
        store.read(b)  # LRU order now a, b
        store.peek(a)  # must NOT move a to the back
        store.read(c)  # evicts a (still least recently *read*)
        misses_before = store.stats.misses
        store.read(b)  # b stayed cached
        assert store.stats.misses == misses_before
        store.read(a)  # a was evicted despite the peek
        assert store.stats.misses == misses_before + 1

    def test_validation_walk_leaves_cache_as_found(self, tmp_path):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "v.pack"
        pack_tree(tree, path, block_size=512)
        with PagedTree.open(
            path, values=dict(tree.objects), cache_pages=8
        ) as paged:
            engine = QueryEngine(paged)
            windows = random_windows(5, seed=29)
            for window in windows:
                engine.query(window)
            cached_before = sorted(
                paged.page_store._pages
            )
            validate_rtree(paged, expect_size=len(data))
            assert sorted(paged.page_store._pages) == cached_before

    def test_peek_sees_dirty_pages(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=8)
        from repro.rtree.node import Node

        bid = next(store.block_ids())
        node = Node(True, [(Rect((0, 0), (1, 1)), 3)])
        store.write(bid, node)
        assert store.peek(bid) is node  # served from the dirty cache


class TestWriteBack:
    """The dirty-page write-back layer: logical writes defer encoding
    until eviction, sync or close."""

    def _store(self, path, capacity=8):
        data = random_rects(200, seed=30)
        tree = build_prtree(BlockStore(), data, 8)
        pack_tree(tree, path, block_size=512)
        file_store = FileBlockStore.open(path)
        return PagedNodeStore(file_store, dim=2, capacity=capacity)

    def _node(self, oid=1):
        from repro.rtree.node import Node

        return Node(True, [(Rect((0, 0), (1, 1)), oid)])

    def test_write_counts_logical_io_but_defers_physical(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        bid = next(store.block_ids())
        writes_before = store.counters.writes
        store.write(bid, self._node())
        assert store.counters.writes == writes_before + 1
        assert store.stats.flushes == 0
        assert store.dirty_pages() == 1
        # The bytes on disk are still the packed original.
        is_leaf, entries = store.codec.decode(store.file_store.peek(bid))
        assert entries != self._node().entries

    def test_repeated_writes_flush_once_on_sync(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        bid = next(store.block_ids())
        for i in range(10):
            store.write(bid, self._node(i))
        assert store.counters.writes >= 10  # logical: one per write
        assert store.sync() == 1  # physical: one dirty page
        assert store.stats.flushes == 1
        assert store.dirty_pages() == 0
        is_leaf, entries = store.codec.decode(store.file_store.peek(bid))
        assert entries == self._node(9).entries

    def test_eviction_flushes_dirty_page(self, tmp_path):
        store = self._store(tmp_path / "w.pack", capacity=2)
        ids = list(store.block_ids())[:4]
        store.write(ids[0], self._node(7))
        store.read(ids[1])
        store.read(ids[2])  # evicts ids[0], which is dirty
        assert store.stats.flushes == 1
        assert store.dirty_pages() == 0
        store.clear_cache()
        assert store.peek(ids[0]).entries == self._node(7).entries

    def test_capacity_zero_degrades_to_write_through(self, tmp_path):
        store = self._store(tmp_path / "w.pack", capacity=0)
        bid = next(store.block_ids())
        store.write(bid, self._node(5))
        assert store.stats.flushes == 1
        assert store.dirty_pages() == 0

    def test_allocate_defers_payload(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        writes_before = store.counters.writes
        bid = store.allocate(self._node(9))
        assert store.counters.writes == writes_before + 1
        assert store.stats.flushes == 0
        assert store.read(bid).entries == self._node(9).entries
        assert store.sync() == 1

    def test_free_discards_dirty_page_without_flush(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        bid = store.allocate(self._node(2))
        store.free(bid)
        assert store.dirty_pages() == 0
        assert store.sync() == 0
        assert store.stats.flushes == 0

    def test_freed_blocks_are_reused(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        high_water = store.allocated_ever
        bid = store.allocate(self._node(2))
        store.free(bid)
        again = store.allocate(self._node(3))
        assert again == bid
        assert store.allocated_ever == high_water + 1

    def test_clear_cache_flushes_first(self, tmp_path):
        store = self._store(tmp_path / "w.pack")
        bid = next(store.block_ids())
        store.write(bid, self._node(4))
        store.clear_cache()
        assert store.stats.flushes == 1
        assert store.peek(bid).entries == self._node(4).entries

    def test_sync_flushes_in_block_order(self, tmp_path):
        store = self._store(tmp_path / "w.pack", capacity=16)
        ids = sorted(store.block_ids())[:5]
        for bid in reversed(ids):
            store.write(bid, self._node(bid))
        order: list[int] = []
        original = store.file_store.write_back

        def spy(block_id, payload):
            order.append(block_id)
            original(block_id, payload)

        store.file_store.write_back = spy
        store.sync()
        assert order == ids

    def test_readonly_write_raises_up_front(self, tmp_path):
        path = tmp_path / "ro.pack"
        store = self._store(path)
        store.file_store.close()
        file_store = FileBlockStore.open(path, readonly=True)
        ro = PagedNodeStore(file_store, dim=2, capacity=4)
        bid = next(ro.block_ids())
        with pytest.raises(StorageError, match="read-only"):
            ro.write(bid, self._node())
        with pytest.raises(StorageError, match="read-only"):
            ro.allocate(self._node())
        file_store.close()


class TestPagedTree:
    def test_open_is_lazy(self, packed):
        _, path, stats, _ = packed
        with PagedTree.open(path) as paged:
            # Nothing is decoded until the first query touches the root.
            assert paged.page_store.cached_pages() == 0
            assert paged.page_stats.misses == 0

    def test_structure_and_queries_match_original(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.height == tree.height
            assert paged.fanout == tree.fanout
            assert paged.size == tree.size
            assert paged.dim == tree.dim
            validate_rtree(paged, expect_size=len(data))
            mem = QueryEngine(tree)
            disk = QueryEngine(paged)
            for window in random_windows(10, seed=26):
                got_mem, stats_mem = mem.query(window)
                got_disk, stats_disk = disk.query(window)
                assert_same_matches(got_disk, got_mem)
                assert stats_disk.leaf_reads == stats_mem.leaf_reads
                assert stats_disk.internal_visits == stats_mem.internal_visits

    def test_knn_and_point_match_original(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            got_mem, _ = KNNEngine(tree).knn((0.4, 0.6), 12)
            got_disk, _ = KNNEngine(paged).knn((0.4, 0.6), 12)
            assert [n.distance for n in got_mem] == [
                n.distance for n in got_disk
            ]
            pm, _ = PointQueryEngine(tree).point_query((0.5, 0.5))
            pd, _ = PointQueryEngine(paged).point_query((0.5, 0.5))
            assert_same_matches(pd, pm)

    def test_bounded_cache_still_correct(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(
            path, values=dict(tree.objects), cache_pages=2
        ) as paged:
            engine = QueryEngine(paged)
            for window in random_windows(5, seed=27):
                got, _ = engine.query(window)
                want, _ = QueryEngine(tree).query(window)
                assert_same_matches(got, want)
            assert paged.page_store.cached_pages() <= 2

    def test_values_via_callable(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=lambda oid: f"v{oid}") as paged:
            matches, _ = QueryEngine(paged).query(Rect((0, 0), (1, 1)))
            assert len(matches) == tree.size
            assert sorted(v for _, v in matches) == sorted(
                f"v{oid}" for oid in tree.objects
            )

    def test_missing_values_are_none(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path) as paged:
            matches, _ = QueryEngine(paged).query(Rect((0, 0), (1, 1)))
            assert matches and all(v is None for _, v in matches)

    def test_register_object_does_not_collide(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.register_object("fresh") == tree.size

    def test_warm_cache_reduces_physical_reads(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            engine = QueryEngine(paged)
            windows = random_windows(5, seed=28)
            for window in windows:
                engine.query(window)
            cold = paged.page_stats.snapshot()
            for window in windows:
                engine.query(window)
            warm = paged.page_stats - cold
            assert warm.misses < cold.misses
            # Logical I/O is unchanged: the page cache is invisible to
            # the paper's accounting.
            assert engine.totals.queries == 10

    def test_shared_counters(self, packed):
        tree, path, _, _ = packed
        counters = IOCounters()
        with PagedTree.open(path, counters=counters) as paged:
            QueryEngine(paged).query(Rect((0.4, 0.4), (0.6, 0.6)))
            assert counters.reads > 0

    def test_open_non_tree_file(self, tmp_path):
        path = tmp_path / "plain.fbs"
        with FileBlockStore.create(path, block_size=512, meta=b"not a tree"):
            pass
        with pytest.raises(StorageError, match="packed tree"):
            PagedTree.open(path)

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            PagedTree.open(tmp_path / "missing.pack")


class TestPagedTreeUpdates:
    """Dynamic inserts/deletes on a packed index file."""

    def _reopen(self, path, objects, **kwargs):
        return PagedTree.open(path, values=objects, **kwargs)

    def test_insert_then_query(self, packed):
        tree, path, _, data = packed
        with self._reopen(path, dict(tree.objects)) as paged:
            oid = paged.insert(Rect((0.31, 0.41), (0.32, 0.42)), "fresh")
            assert paged.objects[oid] == "fresh"
            assert paged.size == len(data) + 1
            got, _ = QueryEngine(paged).query(
                Rect((0.3, 0.4), (0.33, 0.43))
            )
            assert "fresh" in [v for _, v in got]
            validate_rtree(paged, expect_size=len(data) + 1)

    def test_delete_then_query(self, packed):
        tree, path, _, data = packed
        rect, value = data[0]
        with self._reopen(path, dict(tree.objects)) as paged:
            assert paged.delete(rect, value)
            assert paged.size == len(data) - 1
            got, _ = QueryEngine(paged).query(rect)
            assert value not in [v for _, v in got]
            validate_rtree(paged, expect_size=len(data) - 1)

    def test_updates_survive_sync_and_reopen(self, packed):
        tree, path, _, data = packed
        with self._reopen(path, dict(tree.objects)) as paged:
            oid = paged.insert(Rect((0.5, 0.5), (0.51, 0.51)), "persisted")
            rect0, value0 = data[0]
            assert paged.delete(rect0, value0)
            flushed = paged.sync()
            assert flushed > 0
            objects = dict(paged.objects)
        with self._reopen(path, objects, readonly=True) as again:
            assert again.size == len(data)  # one in, one out
            validate_rtree(again, expect_size=len(data))
            got, _ = QueryEngine(again).query(Rect((0, 0), (1, 1)))
            values = [v for _, v in got]
            assert "persisted" in values
            assert value0 not in values

    def test_close_syncs_pending_writes(self, packed):
        tree, path, _, data = packed
        paged = self._reopen(path, dict(tree.objects))
        paged.insert(Rect((0.5, 0.5), (0.51, 0.51)), "unsynced")
        objects = dict(paged.objects)
        paged.close()  # no explicit sync
        with self._reopen(path, objects, readonly=True) as again:
            assert again.size == len(data) + 1
            validate_rtree(again, expect_size=len(data) + 1)

    def test_descriptor_tracks_height_growth(self, tmp_path):
        data = random_rects(40, seed=51)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "grow.pack"
        pack_tree(tree, path, block_size=512)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            before = paged.height
            for i in range(200):
                x = (i % 20) / 20.0
                y = (i // 20) / 10.0
                paged.insert(Rect((x, y), (x + 0.01, y + 0.01)), 100 + i)
            assert paged.height > before
            height, size = paged.height, paged.size
            objects = dict(paged.objects)
        with PagedTree.open(path, values=objects) as again:
            assert again.height == height
            assert again.size == size == 240
            validate_rtree(again, expect_size=240)

    def test_readonly_update_raises_up_front(self, packed):
        tree, path, _, data = packed
        with self._reopen(path, dict(tree.objects), readonly=True) as paged:
            with pytest.raises(StorageError, match="read-only"):
                paged.insert(Rect((0, 0), (1, 1)), "nope")
            with pytest.raises(StorageError, match="read-only"):
                paged.delete(*data[0])
            assert paged.sync() == 0  # nothing to flush, no error

    def test_callable_values_cannot_update(self, packed):
        _, path, _, _ = packed
        with PagedTree.open(path, values=lambda oid: f"v{oid}") as paged:
            with pytest.raises(StorageError, match="callable"):
                paged.insert(Rect((0, 0), (1, 1)), "nope")

    def test_fresh_oids_do_not_collide_without_values(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(path) as paged:
            oid = paged.insert(Rect((0.5, 0.5), (0.51, 0.51)), "fresh")
            assert oid >= len(data)

    def test_oids_do_not_collide_after_synced_deletes(self, tmp_path):
        # Deletes shrink `size` below the high-water object id; a
        # reopened handle must keep issuing ids above it (the
        # descriptor's next_oid), or a fresh insert aliases a live
        # entry's value.
        data = random_rects(10, seed=55)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "oids.pack"
        pack_tree(tree, path, block_size=512)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.delete(*data[0])
            assert paged.delete(*data[1])
        with PagedTree.open(path, values=None) as again:
            live_oids = {
                oid for _, leaf in again.iter_leaves()
                for _, oid in leaf.entries
            }
            oid = again.insert(Rect((0.5, 0.5), (0.51, 0.51)), "fresh")
            assert oid not in live_oids
            assert oid >= 10

    def test_write_back_beats_write_through(self, packed):
        tree, path, _, data = packed
        with self._reopen(path, dict(tree.objects)) as paged:
            writes_before = paged.store.counters.writes
            for i in range(50):
                x = 0.3 + (i % 10) * 0.001
                paged.insert(Rect((x, x), (x + 0.002, x + 0.002)), 900 + i)
            logical = paged.store.counters.writes - writes_before
            physical = paged.page_stats.flushes + paged.sync()
            # Write-through would have cost one physical write per
            # logical write I/O; write-back coalesces repeated touches.
            assert physical < logical


class TestMmapPagedTree:
    """PagedTree.open(mmap=True): identical answers and logical I/O."""

    def test_queries_and_accounting_match(self, packed):
        tree, path, _, data = packed
        values = dict(tree.objects)
        windows = random_windows(10, seed=27)
        with PagedTree.open(path, values=values, readonly=True) as plain, \
                PagedTree.open(
                    path, values=values, readonly=True, mmap=True
                ) as mapped:
            assert mapped.page_store.file_store.mmapped
            plain_engine, mapped_engine = QueryEngine(plain), QueryEngine(mapped)
            for window in windows:
                got_plain, stats_plain = plain_engine.query(window)
                got_mapped, stats_mapped = mapped_engine.query(window)
                assert_same_matches(got_mapped, got_plain)
                assert stats_mapped.leaf_reads == stats_plain.leaf_reads
            assert (
                mapped.store.counters.reads == plain.store.counters.reads
            )

    def test_updates_and_cold_reopen(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(path, values=dict(tree.objects), mmap=True) as t:
            for i in range(40):
                t.insert(
                    Rect((0.4 + i * 0.001, 0.4), (0.41 + i * 0.001, 0.41)),
                    f"m{i}",
                )
            for rect, value in data[:10]:
                assert t.delete(rect, value)
            values = dict(t.objects)
        with PagedTree.open(path, values=values, readonly=True) as cold:
            validate_rtree(cold, expect_size=len(data) + 40 - 10)
