"""Unit tests for pack_tree, PagedNodeStore, and PagedTree."""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockStoreProtocol
from repro.prtree.prtree import build_prtree
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.persist import PersistError
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.storage import (
    FileBlockStore,
    PagedNodeStore,
    PagedTree,
    StorageError,
    pack_tree,
)

from tests.conftest import assert_same_matches, random_rects, random_windows


@pytest.fixture
def packed(tmp_path):
    """A PR-tree packed to disk, plus the in-memory original."""
    data = random_rects(800, seed=21)
    tree = build_prtree(BlockStore(), data, 16)
    path = tmp_path / "index.pack"
    stats = pack_tree(tree, path, block_size=4096)
    return tree, path, stats, data


class TestPackTree:
    def test_stats_match_tree(self, packed):
        tree, _, stats, _ = packed
        assert stats.n_blocks == tree.node_count()
        assert stats.size == tree.size
        assert stats.height == tree.height
        assert stats.file_bytes == 4096 + stats.n_blocks * 4096

    def test_pack_is_sequential_io(self, tmp_path):
        data = random_rects(300, seed=22)
        tree = build_hilbert(BlockStore(), data, 8)
        stats = pack_tree(tree, tmp_path / "seq.pack", block_size=512)
        # Packing writes blocks 0..n-1 in order: one write per node, all
        # but the first following its predecessor.
        assert stats.write_ios == stats.n_blocks
        assert stats.seq_writes == stats.n_blocks - 1

    def test_fanout_too_large_for_block(self, tmp_path):
        data = random_rects(400, seed=23)
        tree = build_hilbert(BlockStore(), data, 200)  # 200 > 113
        with pytest.raises(PersistError):
            pack_tree(tree, tmp_path / "x.pack", block_size=4096)

    def test_pack_single_leaf_tree(self, tmp_path):
        data = random_rects(3, seed=24)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "leaf.pack"
        pack_tree(tree, path)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            validate_rtree(paged, expect_size=3)


class TestPagedNodeStore:
    def _store(self, path, capacity=4):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        pack_tree(tree, path, block_size=512)
        file_store = FileBlockStore.open(path)
        return PagedNodeStore(file_store, dim=2, capacity=capacity)

    def test_satisfies_store_protocol(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        assert isinstance(store, BlockStoreProtocol)

    def test_cache_bounded(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=4)
        for bid in list(store.block_ids())[:20]:
            store.peek(bid)
        assert store.cached_pages() <= 4
        assert store.stats.evictions >= 16

    def test_read_counts_even_on_page_hit(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=4)
        bid = next(store.block_ids())
        store.read(bid)
        store.read(bid)  # page hit, still one logical I/O
        assert store.counters.reads == 2
        assert store.stats.misses == 1
        assert store.stats.hits == 1

    def test_peek_costs_no_logical_io(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        before = store.counters.total
        store.peek(next(store.block_ids()))
        assert store.counters.total == before

    def test_zero_capacity_always_decodes(self, tmp_path):
        store = self._store(tmp_path / "p.pack", capacity=0)
        a, b = list(store.block_ids())[:2]
        store.peek(a)
        store.peek(b)
        store.peek(a)  # the single pinned MRU slot now holds b
        assert store.stats.misses == 3
        assert store.cached_pages() == 0

    def test_repeated_access_costs_one_physical_read_even_cold(self, tmp_path):
        # Engines peek a node's kind then read the same block; that pair
        # must cost one physical read even with no page cache at all.
        store = self._store(tmp_path / "p.pack", capacity=0)
        bid = next(store.block_ids())
        store.peek(bid)
        store.read(bid)
        assert store.stats.misses == 1
        assert store.counters.reads == 1

    def test_zero_capacity_logical_equals_physical_io(self, tmp_path):
        data = random_rects(300, seed=25)
        tree = build_prtree(BlockStore(), data, 8)
        path = tmp_path / "cold.pack"
        pack_tree(tree, path, block_size=512)
        with PagedTree.open(path, cache_pages=0) as paged:
            engine = QueryEngine(paged, cache_internal=False)
            for window in random_windows(3, seed=29):
                engine.query(window)
            totals = engine.totals
            assert (
                paged.page_stats.physical_reads
                == totals.leaf_reads + totals.internal_reads
            )

    def test_clear_cache_goes_cold(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        bid = next(store.block_ids())
        store.peek(bid)
        store.clear_cache()
        store.peek(bid)
        assert store.stats.misses == 2

    def test_write_roundtrips_through_codec(self, tmp_path):
        store = self._store(tmp_path / "p.pack")
        from repro.rtree.node import Node

        bid = store.allocate(Node(True, [(Rect((0, 0), (1, 1)), 7)]))
        store.clear_cache()
        node = store.peek(bid)
        assert node.is_leaf and node.entries == [(Rect((0, 0), (1, 1)), 7)]

    def test_negative_capacity_rejected(self, tmp_path):
        file_store = FileBlockStore.create(tmp_path / "n.fbs", block_size=512)
        with pytest.raises(ValueError):
            PagedNodeStore(file_store, dim=2, capacity=-1)
        file_store.close()


class TestPagedTree:
    def test_open_is_lazy(self, packed):
        _, path, stats, _ = packed
        with PagedTree.open(path) as paged:
            # Nothing is decoded until the first query touches the root.
            assert paged.page_store.cached_pages() == 0
            assert paged.page_stats.misses == 0

    def test_structure_and_queries_match_original(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.height == tree.height
            assert paged.fanout == tree.fanout
            assert paged.size == tree.size
            assert paged.dim == tree.dim
            validate_rtree(paged, expect_size=len(data))
            mem = QueryEngine(tree)
            disk = QueryEngine(paged)
            for window in random_windows(10, seed=26):
                got_mem, stats_mem = mem.query(window)
                got_disk, stats_disk = disk.query(window)
                assert_same_matches(got_disk, got_mem)
                assert stats_disk.leaf_reads == stats_mem.leaf_reads
                assert stats_disk.internal_visits == stats_mem.internal_visits

    def test_knn_and_point_match_original(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            got_mem, _ = KNNEngine(tree).knn((0.4, 0.6), 12)
            got_disk, _ = KNNEngine(paged).knn((0.4, 0.6), 12)
            assert [n.distance for n in got_mem] == [
                n.distance for n in got_disk
            ]
            pm, _ = PointQueryEngine(tree).point_query((0.5, 0.5))
            pd, _ = PointQueryEngine(paged).point_query((0.5, 0.5))
            assert_same_matches(pd, pm)

    def test_bounded_cache_still_correct(self, packed):
        tree, path, _, data = packed
        with PagedTree.open(
            path, values=dict(tree.objects), cache_pages=2
        ) as paged:
            engine = QueryEngine(paged)
            for window in random_windows(5, seed=27):
                got, _ = engine.query(window)
                want, _ = QueryEngine(tree).query(window)
                assert_same_matches(got, want)
            assert paged.page_store.cached_pages() <= 2

    def test_values_via_callable(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=lambda oid: f"v{oid}") as paged:
            matches, _ = QueryEngine(paged).query(Rect((0, 0), (1, 1)))
            assert len(matches) == tree.size
            assert sorted(v for _, v in matches) == sorted(
                f"v{oid}" for oid in tree.objects
            )

    def test_missing_values_are_none(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path) as paged:
            matches, _ = QueryEngine(paged).query(Rect((0, 0), (1, 1)))
            assert matches and all(v is None for _, v in matches)

    def test_register_object_does_not_collide(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.register_object("fresh") == tree.size

    def test_warm_cache_reduces_physical_reads(self, packed):
        tree, path, _, _ = packed
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            engine = QueryEngine(paged)
            windows = random_windows(5, seed=28)
            for window in windows:
                engine.query(window)
            cold = paged.page_stats.snapshot()
            for window in windows:
                engine.query(window)
            warm = paged.page_stats - cold
            assert warm.misses < cold.misses
            # Logical I/O is unchanged: the page cache is invisible to
            # the paper's accounting.
            assert engine.totals.queries == 10

    def test_shared_counters(self, packed):
        tree, path, _, _ = packed
        counters = IOCounters()
        with PagedTree.open(path, counters=counters) as paged:
            QueryEngine(paged).query(Rect((0.4, 0.4), (0.6, 0.6)))
            assert counters.reads > 0

    def test_open_non_tree_file(self, tmp_path):
        path = tmp_path / "plain.fbs"
        with FileBlockStore.create(path, block_size=512, meta=b"not a tree"):
            pass
        with pytest.raises(StorageError, match="packed tree"):
            PagedTree.open(path)

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            PagedTree.open(tmp_path / "missing.pack")
