"""Unit tests for the pseudo-PR-tree (paper Section 2.1)."""

import math

import pytest

from repro.geometry.rect import Rect
from repro.prtree.pseudo import PseudoLeaf, PseudoNode, PseudoPRTree
from repro.rtree.query import brute_force_query

from tests.conftest import random_rects, random_windows


def items_of(data):
    return [(rect, value) for rect, value in data]


class TestStructure:
    def test_small_set_is_single_leaf(self):
        items = items_of(random_rects(5, seed=1))
        tree = PseudoPRTree(items, capacity=8)
        assert isinstance(tree.root, PseudoLeaf)
        assert len(tree.root) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PseudoPRTree([], capacity=8)

    def test_all_items_in_exactly_one_leaf(self):
        items = items_of(random_rects(500, seed=2))
        tree = PseudoPRTree(items, capacity=8)
        seen = [p for leaf in tree.leaves() for _, p in leaf.items]
        assert sorted(seen) == sorted(p for _, p in items)

    def test_leaf_capacity_respected(self):
        items = items_of(random_rects(500, seed=3))
        tree = PseudoPRTree(items, capacity=8)
        assert all(len(leaf) <= 8 for leaf in tree.leaves())

    def test_internal_degree_at_most_2d_plus_2(self):
        items = items_of(random_rects(500, seed=4))
        tree = PseudoPRTree(items, capacity=8)
        for node in tree.nodes():
            assert len(node.children) <= 2 * 2 + 2
            assert len(node.priority_leaves) <= 4
            assert len(node.subtrees) <= 2

    def test_round_robin_split_axes(self):
        items = items_of(random_rects(2000, seed=5))
        tree = PseudoPRTree(items, capacity=4, snap_splits=False)

        def walk(node, depth):
            if isinstance(node, PseudoLeaf):
                return
            assert node.split_axis == depth % 4
            for sub in node.subtrees:
                walk(sub, depth + 1)

        walk(tree.root, 0)

    def test_priority_leaves_hold_extremes(self):
        items = items_of(random_rects(300, seed=6))
        tree = PseudoPRTree(items, capacity=8)
        root = tree.root
        assert isinstance(root, PseudoNode)
        # First priority leaf: the 8 smallest xmin values overall.
        xmin_leaf = root.priority_leaves[0]
        assert xmin_leaf.kind == "priority:0"
        expected = sorted(items, key=lambda it: (it[0].lo[0], it[1]))[:8]
        assert {p for _, p in xmin_leaf.items} == {p for _, p in expected}

    def test_second_priority_leaf_excludes_first(self):
        items = items_of(random_rects(300, seed=7))
        tree = PseudoPRTree(items, capacity=8)
        root = tree.root
        taken = {p for _, p in root.priority_leaves[0].items}
        remaining = [it for it in items if it[1] not in taken]
        expected = sorted(remaining, key=lambda it: (it[0].lo[1], it[1]))[:8]
        ymin_leaf = root.priority_leaves[1]
        assert ymin_leaf.kind == "priority:1"
        assert {p for _, p in ymin_leaf.items} == {p for _, p in expected}

    def test_max_direction_priority_leaf(self):
        items = items_of(random_rects(300, seed=8))
        tree = PseudoPRTree(items, capacity=8)
        root = tree.root
        taken = {
            p
            for leaf in root.priority_leaves[:2]
            for _, p in leaf.items
        }
        remaining = [it for it in items if it[1] not in taken]
        expected = sorted(
            remaining, key=lambda it: (-it[0].hi[0], it[1])
        )[:8]
        xmax_leaf = root.priority_leaves[2]
        assert xmax_leaf.kind == "priority:2"
        assert {p for _, p in xmax_leaf.items} == {p for _, p in expected}

    def test_median_split_is_balanced(self):
        items = items_of(random_rects(4096, seed=9))
        tree = PseudoPRTree(items, capacity=4, snap_splits=False)

        def count(node):
            if isinstance(node, PseudoLeaf):
                return len(node)
            return sum(count(c) for c in node.children)

        def walk(node):
            if isinstance(node, PseudoLeaf) or len(node.subtrees) < 2:
                return
            sizes = [count(s) for s in node.subtrees]
            rest = sum(sizes)
            # Lemma 2 needs each side <= half the remainder (+1 for odd).
            assert max(sizes) <= rest // 2 + 1
            for sub in node.subtrees:
                walk(sub)

        walk(tree.root)

    def test_snap_splits_make_full_leaves(self):
        items = items_of(random_rects(4000, seed=10))
        tree = PseudoPRTree(items, capacity=8, snap_splits=True)
        sizes = [len(leaf) for leaf in tree.leaves()]
        # Near-100% utilization: the number of non-full leaves is tiny.
        assert sizes.count(8) >= len(sizes) * 0.95

    def test_priority_size_one_variant(self):
        # Agarwal et al. [2]: priority leaves of size 1.
        items = items_of(random_rects(200, seed=11))
        tree = PseudoPRTree(items, capacity=8, priority_size=1)
        root = tree.root
        assert all(len(leaf) == 1 for leaf in root.priority_leaves)

    def test_mbrs_cover_subtrees(self):
        items = items_of(random_rects(600, seed=12))
        tree = PseudoPRTree(items, capacity=8)

        def walk(node):
            if isinstance(node, PseudoLeaf):
                for rect, _ in node.items:
                    assert node.mbr.contains_rect(rect)
                return
            for child in node.children:
                assert node.mbr.contains_rect(child.mbr)
                walk(child)

        walk(tree.root)

    def test_3d_structure(self):
        items = items_of(random_rects(400, seed=13, dim=3))
        tree = PseudoPRTree(items, capacity=8)
        for node in tree.nodes():
            assert len(node.priority_leaves) <= 6  # 2d = 6 directions
            assert node.split_axis < 6
        seen = [p for leaf in tree.leaves() for _, p in leaf.items]
        assert len(seen) == 400


class TestQueries:
    def test_matches_brute_force(self):
        data = random_rects(800, seed=14)
        tree = PseudoPRTree(items_of(data), capacity=8)
        for window in random_windows(20, seed=15):
            got, _ = tree.query(window)
            want = brute_force_query(data, window)
            assert sorted(p for _, p in got) == sorted(v for _, v in want)

    def test_empty_query(self):
        data = random_rects(100, seed=16)
        tree = PseudoPRTree(items_of(data), capacity=8)
        got, stats = tree.query(Rect((10, 10), (11, 11)))
        assert got == [] and stats.leaves_visited == 0

    def test_lemma2_bound_on_uniform_points(self):
        # Lemma 2: leaves visited = O(sqrt(N/B) + T/B).  Check with a
        # generous constant on uniform data and moderate windows.
        from repro.geometry.rect import point_rect
        import random as _random

        rng = _random.Random(17)
        n, b = 4096, 8
        data = [(point_rect((rng.random(), rng.random())), i) for i in range(n)]
        tree = PseudoPRTree(items_of(data), capacity=b)
        for window in random_windows(20, seed=18, side=0.15):
            got, stats = tree.query(window)
            bound = 8 * (math.sqrt(n / b) + len(got) / b + 1)
            assert stats.leaves_visited <= bound

    def test_query_stats_total(self):
        data = random_rects(300, seed=19)
        tree = PseudoPRTree(items_of(data), capacity=8)
        _, stats = tree.query(Rect((0, 0), (1, 1)))
        assert stats.total_visited == stats.nodes_visited + stats.leaves_visited
        assert stats.reported == 300
