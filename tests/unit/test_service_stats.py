"""Unit tests for the serving layer's streaming latency statistics."""

import math
import random

import pytest

from repro.geometry.rect import Rect
from repro.server import WindowRequest
from repro.server.requests import RequestResult
from repro.server.server import BatchReport
from repro.service import LatencyHistogram, ServiceStats


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert len(h) == 0
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_single_sample_percentiles_are_exact(self):
        h = LatencyHistogram()
        h.observe(0.0123)
        # min/max clamping makes a single-sample histogram exact.
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == pytest.approx(0.0123)

    def test_percentile_relative_error_bound(self):
        # Geometric buckets with growth 1.2 guarantee <= ~10% relative
        # error against the exact empirical percentile.
        rng = random.Random(7)
        samples = [rng.uniform(1e-5, 2.0) for _ in range(5000)]
        h = LatencyHistogram()
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for p in (50, 90, 95, 99):
            exact = ordered[max(0, math.ceil(len(ordered) * p / 100) - 1)]
            estimate = h.percentile(p)
            assert abs(estimate - exact) / exact < 0.11, (p, exact, estimate)

    def test_percentiles_monotone(self):
        rng = random.Random(3)
        h = LatencyHistogram()
        for _ in range(500):
            h.observe(rng.expovariate(100.0))
        values = [h.percentile(p) for p in (1, 25, 50, 75, 95, 99, 100)]
        assert values == sorted(values)

    def test_mean_min_max_exact(self):
        h = LatencyHistogram()
        for s in (0.001, 0.002, 0.009):
            h.observe(s)
        assert h.mean == pytest.approx(0.004)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.009)

    def test_sub_floor_and_huge_samples_clamp(self):
        h = LatencyHistogram()
        h.observe(0.0)
        h.observe(1e-9)
        h.observe(10_000.0)  # beyond the last bucket boundary
        assert len(h) == 3
        assert h.percentile(100) == pytest.approx(10_000.0)
        assert h.percentile(1) <= 1e-6  # inside the floor bucket

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.001, 0.004):
            a.observe(s)
        for s in (0.002, 0.1):
            b.observe(s)
        a.merge(b)
        assert len(a) == 4
        assert a.max == pytest.approx(0.1)
        assert a.total == pytest.approx(0.107)

    def test_sub_microsecond_observations_share_the_floor_bucket(self):
        # Observations under the 1 µs floor all land in bucket 0, but
        # min/max clamping keeps the percentile inside the observed
        # range — never a negative or zero fabrication.
        h = LatencyHistogram()
        for s in (2e-7, 5e-7, 9e-7):
            h.observe(s)
        assert h.counts[0] == 3
        for p in (1, 50, 99):
            assert 2e-7 <= h.percentile(p) <= 9e-7
        assert h.min == pytest.approx(2e-7)
        assert h.mean == pytest.approx((2e-7 + 5e-7 + 9e-7) / 3)

    def test_overflow_bucket_reports_observed_max(self):
        # The last bucket is open-ended, so a geometric midpoint would
        # be a fabrication; any rank landing there must report the
        # exact observed max.
        h = LatencyHistogram()
        h.observe(5_000.0)
        h.observe(50_000.0)
        assert h.counts[-1] == 2
        for p in (1, 50, 100):
            assert h.percentile(p) == pytest.approx(50_000.0)

    def test_empty_histogram_percentiles_are_zero(self):
        h = LatencyHistogram()
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 0.0
        # Merging two empties stays empty and well-defined.
        other = LatencyHistogram()
        h.merge(other)
        assert len(h) == 0
        assert h.percentile(50) == 0.0

    def test_merge_equals_observing_the_union(self):
        rng = random.Random(11)
        left = [rng.expovariate(50.0) for _ in range(300)]
        right = [rng.uniform(1e-7, 100.0) for _ in range(300)]
        a, b, union = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for s in left:
            a.observe(s)
            union.observe(s)
        for s in right:
            b.observe(s)
            union.observe(s)
        a.merge(b)
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert a.min == union.min
        assert a.max == union.max
        for p in (50, 95, 99):
            assert a.percentile(p) == pytest.approx(union.percentile(p))

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-0.001)

    def test_bad_percentile_rejected(self):
        h = LatencyHistogram()
        h.observe(0.001)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)


def _report(latencies_by_kind):
    """A BatchReport stub carrying executed-request latencies."""
    report = BatchReport()
    window = Rect((0.0, 0.0), (1.0, 1.0))
    for kind, latencies in latencies_by_kind.items():
        for latency in latencies:
            request = WindowRequest(window)
            object.__setattr__(request, "kind", kind)
            report.results.append(
                RequestResult(
                    request=request, value=[], stats=None, latency_s=latency
                )
            )
    return report


class TestServiceStats:
    def test_observe_tracks_kind_and_overall(self):
        stats = ServiceStats()
        stats.observe("window", 0.002)
        stats.observe("window", 0.004)
        stats.observe("knn", 0.05)
        assert stats.completed == 3
        assert stats.overall.count == 3
        assert stats.by_kind["window"].count == 2
        assert stats.by_kind["knn"].count == 1

    def test_observe_batch_skips_duplicates(self):
        report = _report({"window": [0.001, 0.002], "point": [0.003]})
        report.results.append(
            RequestResult(
                request=report.results[0].request,
                value=[],
                stats=None,
                latency_s=0.0,
                deduped=True,
            )
        )
        stats = ServiceStats()
        stats.observe_batch(report)
        assert stats.completed == 3
        assert stats.batches == 1
        assert stats.by_kind["window"].count == 2

    def test_kind_summaries_sorted_and_in_ms(self):
        stats = ServiceStats()
        stats.observe("window", 0.010)
        stats.observe("knn", 0.020)
        summaries = stats.kind_summaries()
        assert [s.kind for s in summaries] == ["knn", "window"]
        assert summaries[1].p50_ms == pytest.approx(10.0, rel=0.11)
        assert summaries[0].count == 1

    def test_queue_depth_high_water(self):
        stats = ServiceStats()
        stats.note_queue_depth(3)
        stats.note_queue_depth(9)
        stats.note_queue_depth(1)
        assert stats.queue_depth == 1
        assert stats.max_queue_depth == 9

    def test_rejected_total(self):
        stats = ServiceStats()
        stats.rejected_reads += 2
        stats.rejected_writes += 1
        assert stats.rejected == 3

    def test_throughput_window(self):
        stats = ServiceStats()
        assert stats.throughput_rps == 0.0
        stats.observe("window", 0.001)
        stats.finished_at = stats.started_at + 2.0
        stats.completed = 10
        assert stats.throughput_rps == pytest.approx(5.0)
