"""Unit tests for the synchronized-traversal spatial join."""

import pytest

from tests.conftest import random_rects

from repro.bulk.hilbert import build_hilbert
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect, point_rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.join import (
    SpatialJoinEngine,
    brute_force_join,
    spatial_join,
    sweep_pairs,
)

BUILDERS = [build_prtree, build_hilbert, build_tgs]
BUILDER_IDS = ["PR", "H", "TGS"]


def value_pairs(pairs):
    return sorted(((a[1], b[1]) for a, b in pairs))


class TestSweepPairs:
    def test_matches_nested_loop(self):
        left = [(r, i) for r, i in random_rects(60, seed=1, max_side=0.2)]
        right = [(r, i) for r, i in random_rects(40, seed=2, max_side=0.2)]
        got = sorted(sweep_pairs(left, right))
        want = sorted(
            (i, j)
            for i, (ra, _) in enumerate(left)
            for j, (rb, _) in enumerate(right)
            if ra.intersects(rb)
        )
        assert got == want

    def test_no_duplicates(self):
        left = [(Rect((0.0, 0.0), (1.0, 1.0)), 0)] * 3
        right = [(Rect((0.5, 0.5), (0.6, 0.6)), 0)] * 2
        pairs = list(sweep_pairs(left, right))
        assert len(pairs) == len(set(pairs)) == 6

    def test_boundary_contact_counts(self):
        left = [(Rect((0.0, 0.0), (1.0, 1.0)), 0)]
        right = [(Rect((1.0, 1.0), (2.0, 2.0)), 0)]
        assert list(sweep_pairs(left, right)) == [(0, 0)]

    def test_disjoint_in_y_only(self):
        # x-intervals overlap, y-intervals do not: the above-x check
        # must reject the pair.
        left = [(Rect((0.0, 0.0), (1.0, 0.1)), 0)]
        right = [(Rect((0.0, 0.5), (1.0, 0.6)), 0)]
        assert list(sweep_pairs(left, right)) == []

    def test_empty_sides(self):
        rects = [(Rect((0.0, 0.0), (1.0, 1.0)), 0)]
        assert list(sweep_pairs([], rects)) == []
        assert list(sweep_pairs(rects, [])) == []

    def test_precomputed_orders_give_same_pairs(self):
        from repro.queries.join import sweep_order

        left = [(r, i) for r, i in random_rects(40, seed=7, max_side=0.2)]
        right = [(r, i) for r, i in random_rects(30, seed=8, max_side=0.2)]
        fresh = sorted(sweep_pairs(left, right))
        cached = sorted(
            sweep_pairs(left, right, sweep_order(left), sweep_order(right))
        )
        assert fresh == cached


@pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
class TestJoinMatchesOracle:
    def test_uniform_join(self, builder):
        left = random_rects(300, seed=1, max_side=0.05)
        right = random_rects(200, seed=2, max_side=0.05)
        tl = builder(BlockStore(), left, 8)
        tr = builder(BlockStore(), right, 8)
        pairs, stats = SpatialJoinEngine(tl, tr).join()
        assert value_pairs(pairs) == sorted(brute_force_join(left, right))
        assert stats.pairs == len(pairs)

    def test_mixed_variants_and_fanouts(self, builder):
        # Join a tree of this variant against a PR-tree with a different
        # fan-out (and hence height).
        left = random_rects(400, seed=3, max_side=0.05)
        right = random_rects(60, seed=4, max_side=0.05)
        tl = builder(BlockStore(), left, 16)
        tr = build_prtree(BlockStore(), right, 4)
        pairs, _ = SpatialJoinEngine(tl, tr).join()
        assert value_pairs(pairs) == sorted(brute_force_join(left, right))

    def test_points_vs_rects(self, builder):
        points = [(point_rect((i / 50, i / 50)), f"p{i}") for i in range(50)]
        rects = random_rects(100, seed=5, max_side=0.1)
        tl = builder(BlockStore(), points, 8)
        tr = builder(BlockStore(), rects, 8)
        pairs, _ = SpatialJoinEngine(tl, tr).join()
        assert value_pairs(pairs) == sorted(brute_force_join(points, rects))


class TestJoinEdgeCases:
    def test_empty_left(self):
        tl = build_prtree(BlockStore(), [], 8)
        tr = build_prtree(BlockStore(), random_rects(50, seed=1), 8)
        pairs, stats = SpatialJoinEngine(tl, tr).join()
        assert pairs == [] and stats.pairs == 0

    def test_empty_right(self):
        tl = build_prtree(BlockStore(), random_rects(50, seed=1), 8)
        tr = build_prtree(BlockStore(), [], 8)
        assert spatial_join(tl, tr) == []

    def test_disjoint_datasets_read_only_roots(self):
        left = [(Rect((0.0, 0.0), (0.1, 0.1)), 0)]
        right = [(Rect((0.8, 0.8), (0.9, 0.9)), 0)]
        tl = build_prtree(BlockStore(), left * 1, 4)
        tr = build_prtree(BlockStore(), right * 1, 4)
        pairs, stats = SpatialJoinEngine(tl, tr).join()
        assert pairs == []
        # Only the two roots are read; their MBRs are disjoint.
        assert stats.node_pairs == 0

    def test_self_join_includes_self_pairs(self):
        data = random_rects(80, seed=6, max_side=0.1)
        tree = build_prtree(BlockStore(), data, 8)
        pairs = spatial_join(tree, tree)
        got = value_pairs(pairs)
        assert got == sorted(brute_force_join(data, data))
        # Every rectangle intersects itself.
        assert all((v, v) in got for _, v in data)

    def test_dimension_mismatch_raises(self):
        t2 = build_prtree(BlockStore(), random_rects(10, seed=1), 4)
        t3 = build_prtree(BlockStore(), random_rects(10, seed=1, dim=3), 4)
        with pytest.raises(ValueError):
            SpatialJoinEngine(t2, t3)


class TestJoinAccounting:
    def test_totals_accumulate(self):
        left = random_rects(200, seed=1)
        right = random_rects(200, seed=2)
        engine = SpatialJoinEngine(
            build_prtree(BlockStore(), left, 8),
            build_prtree(BlockStore(), right, 8),
        )
        _, first = engine.join()
        engine.join()
        assert engine.totals.joins == 2
        assert engine.totals.pairs == 2 * first.pairs

    def test_second_join_has_no_internal_misses(self):
        left = random_rects(400, seed=1)
        right = random_rects(400, seed=2)
        engine = SpatialJoinEngine(
            build_prtree(BlockStore(), left, 8),
            build_prtree(BlockStore(), right, 8),
        )
        engine.join()
        _, stats = engine.join()
        assert stats.left.internal_reads == 0
        assert stats.right.internal_reads == 0
        assert stats.ios > 0  # leaves always hit the disk

    def test_pair_count_matches_join(self):
        left = random_rects(150, seed=3)
        right = random_rects(150, seed=4)
        engine = SpatialJoinEngine(
            build_prtree(BlockStore(), left, 8),
            build_prtree(BlockStore(), right, 8),
        )
        count, _ = engine.pair_count()
        assert count == len(brute_force_join(left, right))

    def test_join_beats_reading_all_node_pairs(self):
        # The synchronized traversal must not degenerate to the
        # cartesian product of leaves on sparse data.
        left = random_rects(800, seed=5, max_side=0.01)
        right = random_rects(800, seed=6, max_side=0.01)
        tl = build_prtree(BlockStore(), left, 8)
        tr = build_prtree(BlockStore(), right, 8)
        _, stats = SpatialJoinEngine(tl, tr).join()
        assert stats.node_pairs < tl.leaf_count() * tr.leaf_count() // 4
