"""Unit tests for whole-tree byte serialization."""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.persist import PersistError, deserialize_tree, serialize_tree
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows


class TestRoundTrip:
    def test_prtree_roundtrip(self):
        data = random_rects(500, seed=1)
        tree = build_prtree(BlockStore(), data, 16)
        image = serialize_tree(tree)
        values = dict(tree.objects)
        clone = deserialize_tree(image, BlockStore(), values)
        validate_rtree(clone, expect_size=500)
        assert clone.height == tree.height
        assert clone.fanout == tree.fanout
        engine = QueryEngine(clone)
        for window in random_windows(10, seed=2):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_single_leaf_roundtrip(self):
        data = random_rects(5, seed=3)
        tree = build_prtree(BlockStore(), data, 16)
        clone = deserialize_tree(serialize_tree(tree), BlockStore(), dict(tree.objects))
        validate_rtree(clone, expect_size=5)

    def test_values_via_callable(self):
        data = [(Rect((0, 0), (1, 1)), "x")]
        tree = build_hilbert(BlockStore(), data, 8)
        clone = deserialize_tree(
            serialize_tree(tree), BlockStore(), lambda oid: f"value-{oid}"
        )
        assert list(clone.all_data())[0][1] == "value-0"

    def test_missing_values_become_none(self):
        data = random_rects(10, seed=4)
        tree = build_hilbert(BlockStore(), data, 8)
        clone = deserialize_tree(serialize_tree(tree), BlockStore())
        assert all(value is None for _, value in clone.all_data())

    def test_image_is_block_aligned(self):
        data = random_rects(100, seed=5)
        tree = build_hilbert(BlockStore(), data, 16)
        from repro.rtree.persist import _SUPERBLOCK_BYTES

        image = serialize_tree(tree, block_size=4096)
        assert (len(image) - _SUPERBLOCK_BYTES) % 4096 == 0

    def test_oid_counter_restored(self):
        data = random_rects(20, seed=6)
        tree = build_hilbert(BlockStore(), data, 8)
        clone = deserialize_tree(serialize_tree(tree), BlockStore(), dict(tree.objects))
        # New registrations must not collide with existing ids.
        new_oid = clone.register_object("fresh")
        assert new_oid not in set(range(20))

    def test_3d_roundtrip(self):
        data = random_rects(100, seed=7, dim=3)
        tree = build_prtree(BlockStore(), data, 8)
        clone = deserialize_tree(serialize_tree(tree), BlockStore(), dict(tree.objects))
        validate_rtree(clone, expect_size=100)


class TestErrors:
    def _tree(self):
        return build_hilbert(BlockStore(), random_rects(50, seed=8), 8)

    def test_fanout_exceeding_block_raises(self):
        data = random_rects(300, seed=9)
        tree = build_hilbert(BlockStore(), data, 200)  # 200 > 113
        with pytest.raises(PersistError):
            serialize_tree(tree, block_size=4096)

    def test_truncated_image(self):
        image = serialize_tree(self._tree())
        with pytest.raises(PersistError):
            deserialize_tree(image[:10], BlockStore())
        with pytest.raises(PersistError):
            deserialize_tree(image[:-100], BlockStore())

    def test_bad_magic(self):
        image = bytearray(serialize_tree(self._tree()))
        image[:4] = b"XXXX"
        with pytest.raises(PersistError, match="bad magic"):
            deserialize_tree(bytes(image), BlockStore())

    def _corrupt_superblock(self, **overrides):
        """Re-pack the superblock of a valid image with fields overridden."""
        import struct

        from repro.rtree.persist import _SUPERBLOCK, _SUPERBLOCK_BYTES

        image = bytearray(serialize_tree(self._tree()))
        fields = list(struct.unpack_from(_SUPERBLOCK, image, 0))
        names = [
            "magic", "dim", "block_size", "fanout",
            "height", "size", "n_blocks", "root_index",
        ]
        for name, value in overrides.items():
            fields[names.index(name)] = value
        struct.pack_into(_SUPERBLOCK, image, 0, *fields)
        return bytes(image)

    def test_block_size_mismatch_vs_store(self):
        image = serialize_tree(self._tree(), block_size=4096)
        with pytest.raises(PersistError, match="block"):
            deserialize_tree(image, BlockStore(block_size=8192))

    def test_zero_dim_rejected(self):
        image = self._corrupt_superblock(dim=0)
        with pytest.raises(PersistError, match="dimension"):
            deserialize_tree(image, BlockStore())

    def test_huge_dim_rejected(self):
        # 200-d entries don't fit a 4 KB block at all.
        image = self._corrupt_superblock(dim=200)
        with pytest.raises(PersistError):
            deserialize_tree(image, BlockStore())

    def test_fanout_below_two_rejected(self):
        image = self._corrupt_superblock(fanout=1)
        with pytest.raises(PersistError, match="fan-out"):
            deserialize_tree(image, BlockStore())

    def test_fanout_exceeding_block_capacity_rejected(self):
        # 4 KB blocks hold at most 113 two-dimensional entries.
        image = self._corrupt_superblock(fanout=500)
        with pytest.raises(PersistError, match="fan-out"):
            deserialize_tree(image, BlockStore())

    def test_dangling_root_index(self):
        image = self._corrupt_superblock(root_index=10**6)
        with pytest.raises(PersistError, match="root"):
            deserialize_tree(image, BlockStore())
