"""Unit tests for R*-tree insertion (the production-baseline updater)."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.rstar import rstar_insert, rstar_split
from repro.rtree.tree import RTree
from repro.rtree.update import delete, insert
from repro.rtree.validate import validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows


def grow_rstar(store, data, fanout=8):
    tree = RTree.create_empty(store, dim=2, fanout=fanout)
    for rect, value in data:
        rstar_insert(tree, rect, value)
    return tree


class TestRStarSplit:
    def test_partition_is_exact(self):
        entries = [(r, v) for r, v in random_rects(20, seed=1)]
        a, b = rstar_split(entries, min_fill=4)
        assert sorted(p for _, p in a + b) == sorted(p for _, p in entries)

    def test_min_fill_respected(self):
        for seed in range(5):
            entries = [(r, v) for r, v in random_rects(13, seed=seed)]
            a, b = rstar_split(entries, min_fill=4)
            assert len(a) >= 4 and len(b) >= 4

    def test_two_entries(self):
        entries = [(Rect((0, 0), (1, 1)), 0), (Rect((5, 5), (6, 6)), 1)]
        a, b = rstar_split(entries, min_fill=1)
        assert len(a) == 1 and len(b) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            rstar_split([(Rect((0, 0), (1, 1)), 0)], min_fill=1)
        with pytest.raises(ValueError):
            rstar_split([(r, v) for r, v in random_rects(4, seed=0)], min_fill=3)

    def test_zero_overlap_split_found(self):
        # Two x-separated bands: the R* split must cut between them with
        # zero overlap.
        left = [(Rect((0.0, i / 10), (0.1, i / 10 + 0.05)), i) for i in range(5)]
        right = [
            (Rect((0.9, i / 10), (1.0, i / 10 + 0.05)), 10 + i) for i in range(5)
        ]
        a, b = rstar_split(left + right, min_fill=2)
        from repro.geometry.rect import mbr_of

        box_a = mbr_of(r for r, _ in a)
        box_b = mbr_of(r for r, _ in b)
        assert box_a.intersection(box_b) is None

    def test_works_in_3d(self):
        entries = [(r, v) for r, v in random_rects(12, seed=3, dim=3)]
        a, b = rstar_split(entries, min_fill=3)
        assert len(a) + len(b) == 12


class TestRStarInsert:
    def test_structure_valid_after_many_inserts(self, store):
        data = random_rects(600, seed=4)
        tree = grow_rstar(store, data)
        validate_rtree(tree, expect_size=600)

    def test_queries_correct(self, store):
        data = random_rects(500, seed=5)
        tree = grow_rstar(store, data)
        engine = QueryEngine(tree)
        for window in random_windows(20, seed=6):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_wrong_dim_raises(self, store):
        tree = RTree.create_empty(store, dim=2, fanout=8)
        with pytest.raises(ValueError):
            rstar_insert(tree, Rect((0,), (1,)), "x")

    def test_forced_reinsertion_happens(self, store):
        # With clustered inserts the first overflow must trigger a
        # reinsertion rather than an immediate split: after exactly
        # fanout+1 inserts into one spot the tree can still be height 1
        # only if it split — R* reinsertion defers that, so we simply
        # check the tree stays valid and queryable through the overflow
        # boundary.
        tree = RTree.create_empty(store, fanout=8)
        r = Rect((0.5, 0.5), (0.51, 0.51))
        for i in range(9):
            rstar_insert(tree, r.translated((i * 1e-4, 0)), i)
        validate_rtree(tree, expect_size=9)

    def test_mixed_with_guttman_delete(self, store):
        data = random_rects(400, seed=7)
        tree = grow_rstar(store, data)
        rng = random.Random(8)
        shuffled = data[:]
        rng.shuffle(shuffled)
        for rect, value in shuffled[:200]:
            assert delete(tree, rect, value)
        validate_rtree(tree, expect_size=200)
        live = [item for item in data if item not in shuffled[:200]]
        engine = QueryEngine(tree)
        for window in random_windows(10, seed=9):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(live, window))

    def test_rstar_beats_guttman_on_clustered_data(self):
        # The reason R* exists: better query trees under dynamic load.
        rng = random.Random(10)
        data = []
        for c in range(20):
            cx, cy = rng.random(), rng.random()
            for i in range(60):
                x = cx + rng.gauss(0, 0.01)
                y = cy + rng.gauss(0, 0.01)
                data.append((Rect((x, y), (x + 0.005, y + 0.005)), (c, i)))
        guttman = RTree.create_empty(BlockStore(), fanout=8)
        rstar = RTree.create_empty(BlockStore(), fanout=8)
        for rect, value in data:
            insert(guttman, rect, value)
            rstar_insert(rstar, rect, value)
        ge, re = QueryEngine(guttman), QueryEngine(rstar)
        for window in random_windows(40, seed=11, side=0.15):
            ge.query(window)
            re.query(window)
        assert re.totals.leaf_reads <= ge.totals.leaf_reads * 1.05

    def test_duplicate_heavy_input(self, store):
        tree = RTree.create_empty(store, fanout=6)
        r = Rect((0.2, 0.2), (0.3, 0.3))
        for i in range(60):
            rstar_insert(tree, r, i)
        validate_rtree(tree, expect_size=60)
        assert tree.count_query(r) == 60
