"""Unit tests for the H, H4, TGS and STR bulk loaders (in-memory faces)."""

import pytest

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import _best_cut, _tree_height, build_tgs
from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import utilization, validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows

ALL_LOADERS = [build_hilbert, build_hilbert4, build_tgs, build_str]
LOADER_IDS = ["H", "H4", "TGS", "STR"]


@pytest.mark.parametrize("loader", ALL_LOADERS, ids=LOADER_IDS)
class TestLoaderContract:
    """Behaviour every bulk loader must satisfy."""

    def test_structure_is_valid(self, store, loader, medium_data):
        tree = loader(store, medium_data, 16)
        validate_rtree(tree, expect_size=len(medium_data))

    def test_high_space_utilization(self, store, loader, medium_data):
        # Section 3.3: "we achieved a space utilization above 99%".
        tree = loader(store, medium_data, 16)
        assert utilization(tree).leaf_fill > 0.99

    def test_queries_match_brute_force(self, store, loader, medium_data):
        tree = loader(store, medium_data, 16)
        engine = QueryEngine(tree)
        for window in random_windows(15, seed=21):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(medium_data, window))

    def test_empty_dataset(self, store, loader):
        tree = loader(store, [], 16)
        assert len(tree) == 0
        assert tree.query(Rect((0, 0), (1, 1))) == []

    def test_single_rect(self, store, loader):
        tree = loader(store, [(Rect((0, 0), (1, 1)), "only")], 16)
        assert tree.height == 1
        assert tree.query(Rect((0.5, 0.5), (2, 2))) == [(Rect((0, 0), (1, 1)), "only")]

    def test_exactly_one_block(self, store, loader):
        data = random_rects(16, seed=1)
        tree = loader(store, data, 16)
        assert tree.height == 1
        validate_rtree(tree, expect_size=16)

    def test_duplicates_preserved(self, store, loader):
        r = Rect((0.5, 0.5), (0.6, 0.6))
        data = [(r, i) for i in range(40)]
        tree = loader(store, data, 8)
        assert tree.count_query(r) == 40

    def test_point_data(self, store, loader):
        from repro.geometry.rect import point_rect

        data = [(point_rect((i / 100, i / 100)), i) for i in range(100)]
        tree = loader(store, data, 8)
        validate_rtree(tree, expect_size=100)
        assert tree.count_query(Rect((0, 0), (0.5, 0.5))) == 51


class TestHilbertSpecifics:
    def test_h_sorts_spatially(self, store):
        # Two spatial clusters must end up in different leaves.
        left = [(Rect((0.0, 0.0), (0.01, 0.01)), f"l{i}") for i in range(8)]
        right = [(Rect((0.9, 0.9), (0.91, 0.91)), f"r{i}") for i in range(8)]
        interleaved = [x for pair in zip(left, right) for x in pair]
        tree = build_hilbert(store, interleaved, 8)
        leaf_sets = [
            {value for _, oid in leaf.entries for value in [tree.objects[oid]]}
            for _, leaf in tree.iter_leaves()
        ]
        assert all(
            all(v.startswith("l") for v in s) or all(v.startswith("r") for v in s)
            for s in leaf_sets
        )

    def test_h_ignores_extent_h4_does_not(self, store):
        # Concentric rectangles: same centers, wildly different extents.
        # H puts them in center order (arbitrary); H4 separates small
        # from large.  We just assert both build valid trees and answer
        # queries identically.
        data = [
            (Rect((0.5 - s, 0.5 - s), (0.5 + s, 0.5 + s)), i)
            for i, s in enumerate([0.001 * k + 0.0001 for k in range(50)])
        ]
        h = build_hilbert(store, data, 8)
        h4 = build_hilbert4(BlockStore(), data, 8)
        window = Rect((0.49, 0.49), (0.51, 0.51))
        assert h.count_query(window) == h4.count_query(window) == 50


class TestTGSSpecifics:
    def test_tree_height_function(self):
        assert _tree_height(1, 16) == 1
        assert _tree_height(16, 16) == 1
        assert _tree_height(17, 16) == 2
        assert _tree_height(256, 16) == 2
        assert _tree_height(257, 16) == 3

    def test_best_cut_prefers_clean_separation(self):
        # Ordering 0 separates two far clusters; ordering 1 mixes them.
        clean = [Rect((0, 0), (1, 1)), Rect((100, 0), (101, 1))]
        messy = [Rect((0, 0), (101, 1)), Rect((0, 0), (101, 1))]
        ordering, cut = _best_cut([clean, messy])
        assert ordering == 0 and cut == 1

    def test_one_underfull_node_per_level(self, store):
        # Footnote 1: rounding to powers of B means at most one node per
        # level may be underfull.
        data = random_rects(1000, seed=5)
        tree = build_tgs(store, data, 8)
        for depth_nodes in _nodes_by_depth(tree).values():
            underfull = [n for n in depth_nodes if len(n.entries) < 8]
            assert len(underfull) <= 1

    def test_greedy_split_quality_on_two_clusters(self, store):
        left = [(Rect((0.0, 0.0), (0.01, 0.01)).translated((0, i * 0.001)), i) for i in range(32)]
        right = [
            (Rect((0.9, 0.9), (0.91, 0.91)).translated((0, i * 0.001)), 100 + i)
            for i in range(32)
        ]
        tree = build_tgs(store, left + right, 8)
        root = tree.peek_node(tree.root_id)
        # No root entry's box should span both clusters.
        for rect, _ in root.entries:
            assert not (rect.lo[0] < 0.5 < rect.hi[0])


def _nodes_by_depth(tree):
    by_depth = {}
    for _, node, depth in tree.iter_nodes():
        by_depth.setdefault(depth, []).append(node)
    return by_depth


class TestSTRSpecifics:
    def test_leaves_are_spatial_tiles(self, store):
        # A regular grid of points packs into leaves with low overlap:
        # total leaf MBR area should stay close to the data extent.
        data = [
            (Rect((x / 10, y / 10), (x / 10, y / 10)), (x, y))
            for x in range(10)
            for y in range(10)
        ]
        tree = build_str(store, data, 10)
        total_leaf_area = sum(leaf.mbr().area() for _, leaf in tree.iter_leaves())
        assert total_leaf_area < 1.0

    def test_3d_build(self, store):
        data = random_rects(300, seed=6, dim=3)
        tree = build_str(store, data, 8)
        validate_rtree(tree, expect_size=300)
