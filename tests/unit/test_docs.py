"""Documentation integrity: links resolve, runnable snippets execute.

Drives ``tools/check_docs.py`` — the same checks the CI docs job runs —
so a broken intra-repo link or a docs example that stopped working
fails the tier-1 suite locally too.
"""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_tree_exists():
    expected = {
        "architecture.md",
        "storage-format.md",
        "query-engine.md",
        "server.md",
        "benchmarks.md",
        "io-accounting.md",
    }
    present = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert expected <= present, expected - present


def test_readme_links_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README does not link docs/{page.name}"
        )


def test_intra_repo_links_resolve():
    assert check_docs.check_links() == []


def test_docs_have_runnable_snippets():
    snippets = check_docs.runnable_snippets()
    assert len(snippets) >= 4
    # Every snippet is tagged in a docs page or the README.
    assert all(path.suffix == ".md" for path, _, _ in snippets)


@pytest.mark.parametrize(
    "snippet",
    check_docs.runnable_snippets(),
    ids=lambda s: f"{s[0].name}#{s[1]}",
)
def test_runnable_snippet_executes(snippet, tmp_path):
    path, index, source = snippet
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-c", source],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{path.name} snippet #{index} failed:\n{proc.stderr}"
    )


def test_checker_cli_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py"),
         "--links"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "OK" in proc.stdout
