"""Cache behaviour through the query engines (satellite of the LRU tests).

``test_iomodel.py`` covers :class:`LRUCache` in isolation; these tests
pin down the contract the engines rely on: LRU eviction order over
longer access sequences, capacity 0 meaning "disabled, every access is a
counted read", and the paper's footnote-5 setup — once all internal
nodes are cached, a window query's ``internal_reads`` is exactly 0 and
its cost is leaf reads alone.
"""

import math

from tests.conftest import random_rects, random_windows

from repro.iomodel.blockstore import BlockStore
from repro.iomodel.cache import LRUCache
from repro.prtree.prtree import build_prtree
from repro.queries.base import TraversalEngine
from repro.rtree.query import QueryEngine


class TestEvictionOrder:
    def test_evicts_least_recently_used_over_long_sequence(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(5)]
        cache = LRUCache(store, capacity=3)
        for bid in ids[:3]:          # pool: 0 1 2 (LRU -> MRU)
            cache.get(bid)
        cache.get(ids[0])            # pool: 1 2 0
        cache.get(ids[3])            # evicts 1 -> pool: 2 0 3
        cache.get(ids[4])            # evicts 2 -> pool: 0 3 4
        assert ids[0] in cache and ids[3] in cache and ids[4] in cache
        assert ids[1] not in cache and ids[2] not in cache

    def test_hit_refreshes_recency_repeatedly(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(4)]
        cache = LRUCache(store, capacity=2)
        cache.get(ids[0])
        for other in ids[1:]:
            cache.get(other)         # each insert evicts the non-0 entry…
            cache.get(ids[0])        # …because 0 is refreshed every time
        assert ids[0] in cache
        assert len(cache) == 2

    def test_eviction_is_metadata_only(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(3)]
        cache = LRUCache(store, capacity=1)
        for bid in ids:
            cache.get(bid)
        # Evictions never write; only the three misses read.
        assert store.counters.reads == 3
        assert store.counters.writes == len(ids)  # from allocate() only


class TestDisabledCache:
    def test_capacity_zero_never_stores(self):
        store = BlockStore()
        bid = store.allocate("x")
        cache = LRUCache(store, capacity=0)
        for _ in range(5):
            cache.get(bid)
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 5
        assert store.counters.reads == 5

    def test_engine_cache_internal_false_is_capacity_zero(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = QueryEngine(tree, cache_internal=False)
        for window in random_windows(5, seed=1):
            engine.query(window)
        # Every internal visit was a counted disk read.
        assert engine.totals.internal_reads == engine.totals.internal_visits
        assert engine.totals.internal_reads > 0

    def test_traversal_engine_honours_capacity(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        capped = TraversalEngine(tree, cache_capacity=1)
        assert capped._cache.capacity == 1
        disabled = TraversalEngine(tree, cache_internal=False)
        assert disabled._cache.capacity == 0
        default = TraversalEngine(tree)
        assert default._cache.capacity == math.inf


class TestWarmCacheWindowQueries:
    def test_warm_cache_internal_reads_zero(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = QueryEngine(tree, cache_internal=True)
        windows = random_windows(10, seed=2)
        # Warm-up pass touches (at least) every internal node these
        # queries need; repeat pass must be all cache hits.
        for window in windows:
            engine.query(window)
        engine.reset()
        for window in windows:
            _, stats = engine.query(window)
            assert stats.internal_reads == 0
            assert stats.internal_visits > 0
        assert engine.totals.internal_reads == 0
        # The paper's convention: with internals cached, cost = leaf reads.
        assert engine.totals.ios == engine.totals.leaf_reads > 0

    def test_leaf_reads_never_cached(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = QueryEngine(tree, cache_internal=True)
        window = random_windows(1, seed=3)[0]
        _, first = engine.query(window)
        _, second = engine.query(window)
        assert second.leaf_reads == first.leaf_reads > 0

    def test_cache_pressure_brings_misses_back(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = QueryEngine(tree, cache_internal=True, cache_capacity=1)
        windows = random_windows(8, seed=4)
        for window in windows:
            engine.query(window)
        engine.reset()
        for window in windows:
            engine.query(window)
        # With room for one internal node, repeat queries still miss
        # (unless the tree is so small only the root is internal).
        internal_nodes = tree.node_count() - tree.leaf_count()
        if internal_nodes > 1:
            assert engine.totals.internal_reads > 0
