"""Unit tests for the d-dimensional rectangle primitive."""

import math

import pytest

from repro.geometry.rect import Rect, mbr_of, point_rect


class TestConstruction:
    def test_basic_2d(self):
        r = Rect((0.0, 1.0), (2.0, 3.0))
        assert r.lo == (0.0, 1.0)
        assert r.hi == (2.0, 3.0)
        assert r.dim == 2

    def test_coordinates_coerced_to_float(self):
        r = Rect((0, 1), (2, 3))
        assert all(isinstance(c, float) for c in r.lo + r.hi)

    def test_degenerate_point_allowed(self):
        r = Rect((1.0, 1.0), (1.0, 1.0))
        assert r.is_point()
        assert r.area() == 0.0

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            Rect((2.0, 0.0), (1.0, 5.0))

    def test_mismatched_dims_raise(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 1.0))

    def test_zero_dimensional_raises(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_immutability(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(AttributeError):
            r.lo = (5.0, 5.0)

    def test_1d_and_3d(self):
        assert Rect((0.0,), (2.0,)).dim == 1
        assert Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)).dim == 3


class TestAccessors:
    def test_paper_notation_properties(self):
        r = Rect((1.0, 2.0), (3.0, 5.0))
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1.0, 2.0, 3.0, 5.0)

    def test_side_lengths(self):
        r = Rect((1.0, 2.0), (3.0, 5.0))
        assert r.side(0) == 2.0
        assert r.side(1) == 3.0

    def test_center(self):
        assert Rect((0.0, 0.0), (2.0, 4.0)).center() == (1.0, 2.0)

    def test_area_2d(self):
        assert Rect((0.0, 0.0), (2.0, 4.0)).area() == 8.0

    def test_area_3d_volume(self):
        assert Rect((0.0, 0.0, 0.0), (2.0, 3.0, 4.0)).area() == 24.0

    def test_margin(self):
        assert Rect((0.0, 0.0), (2.0, 4.0)).margin() == 6.0

    def test_aspect_ratio(self):
        assert Rect((0.0, 0.0), (10.0, 1.0)).aspect_ratio() == 10.0
        assert Rect((0.0, 0.0), (1.0, 1.0)).aspect_ratio() == 1.0

    def test_aspect_ratio_degenerate(self):
        assert Rect((0.0, 0.0), (1.0, 0.0)).aspect_ratio() == math.inf
        assert point_rect((1.0, 1.0)).aspect_ratio() == 1.0


class TestPredicates:
    def test_overlapping_intersect(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, 1.0), (3.0, 3.0))
        assert a.intersects(b) and b.intersects(a)

    def test_disjoint_do_not_intersect(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 2.0), (3.0, 3.0))
        assert not a.intersects(b)

    def test_boundary_contact_counts_as_intersection(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b)

    def test_corner_contact_counts(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 1.0), (2.0, 2.0))
        assert a.intersects(b)

    def test_containment_intersects(self):
        outer = Rect((0.0, 0.0), (10.0, 10.0))
        inner = Rect((4.0, 4.0), (5.0, 5.0))
        assert outer.intersects(inner) and inner.intersects(outer)

    def test_disjoint_on_one_axis_only(self):
        a = Rect((0.0, 0.0), (1.0, 10.0))
        b = Rect((2.0, 0.0), (3.0, 10.0))
        assert not a.intersects(b)

    def test_contains_rect(self):
        outer = Rect((0.0, 0.0), (10.0, 10.0))
        assert outer.contains_rect(Rect((1.0, 1.0), (2.0, 2.0)))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect((9.0, 9.0), (11.0, 11.0)))

    def test_contains_point(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.contains_point((0.5, 0.5))
        assert r.contains_point((0.0, 1.0))  # boundary
        assert not r.contains_point((1.5, 0.5))


class TestDistances:
    def test_point_inside_has_zero_distance(self):
        r = Rect((0.0, 0.0), (2.0, 2.0))
        assert r.dist_sq_to_point((1.0, 1.0)) == 0.0
        assert r.min_dist_to_point((0.0, 2.0)) == 0.0  # boundary

    def test_point_beside_measures_one_axis(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.min_dist_to_point((3.0, 0.5)) == pytest.approx(2.0)
        assert r.min_dist_to_point((0.5, -1.5)) == pytest.approx(1.5)

    def test_point_at_corner_is_euclidean(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.min_dist_to_point((4.0, 5.0)) == pytest.approx(5.0)
        assert r.dist_sq_to_point((4.0, 5.0)) == pytest.approx(25.0)

    def test_max_dist_bounds_min_dist(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        p = (3.0, 3.0)
        assert r.max_dist_sq_to_point(p) >= r.dist_sq_to_point(p)
        # Farthest corner of the box from (3, 3) is (0, 0).
        assert r.max_dist_sq_to_point(p) == pytest.approx(18.0)

    def test_rect_rect_zero_when_touching(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 1.0), (2.0, 2.0))
        assert a.dist_sq_to_rect(b) == 0.0
        assert a.min_dist_to_rect(a) == 0.0

    def test_rect_rect_gap(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((4.0, 5.0), (6.0, 6.0))
        assert a.min_dist_to_rect(b) == pytest.approx(5.0)
        assert b.min_dist_to_rect(a) == pytest.approx(5.0)  # symmetric

    def test_degenerate_rects_give_point_distance(self):
        a = point_rect((0.0, 0.0))
        b = point_rect((3.0, 4.0))
        assert a.min_dist_to_rect(b) == pytest.approx(5.0)
        assert a.dist_sq_to_point((3.0, 4.0)) == pytest.approx(25.0)

    def test_3d_distance(self):
        r = Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert r.min_dist_to_point((2.0, 2.0, 2.0)) == pytest.approx(
            math.sqrt(3.0)
        )


class TestConstructive:
    def test_union_covers_both(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, -1.0), (3.0, 0.5))
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)
        assert u == Rect((0.0, -1.0), (3.0, 1.0))

    def test_union_commutative(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 2.0), (3.0, 3.0))
        assert a.union(b) == b.union(a)

    def test_intersection_of_overlapping(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, 1.0), (3.0, 3.0))
        assert a.intersection(b) == Rect((1.0, 1.0), (2.0, 2.0))

    def test_intersection_of_disjoint_is_none(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((5.0, 5.0), (6.0, 6.0))
        assert a.intersection(b) is None

    def test_intersection_boundary_is_degenerate(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        edge = a.intersection(b)
        assert edge is not None and edge.area() == 0.0

    def test_enlargement_guttman(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        assert a.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0
        assert a.enlargement(Rect((0.0, 0.0), (2.0, 1.0))) == pytest.approx(1.0)

    def test_translated(self):
        r = Rect((0.0, 0.0), (1.0, 1.0)).translated((5.0, -1.0))
        assert r == Rect((5.0, -1.0), (6.0, 0.0))

    def test_scaled(self):
        r = Rect((1.0, 1.0), (2.0, 2.0)).scaled(2.0)
        assert r == Rect((2.0, 2.0), (4.0, 4.0))
        with pytest.raises(ValueError):
            r.scaled(0.0)


class TestCornerMapping:
    def test_corner_point_2d_is_paper_mapping(self):
        r = Rect((1.0, 2.0), (3.0, 4.0))
        assert r.corner_point() == (1.0, 2.0, 3.0, 4.0)

    def test_corner_point_3d(self):
        r = Rect((1.0, 2.0, 3.0), (4.0, 5.0, 6.0))
        assert r.corner_point() == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)

    def test_corner_coord_min_axes(self):
        r = Rect((1.0, 2.0), (3.0, 4.0))
        assert r.corner_coord(0) == 1.0
        assert r.corner_coord(1) == 2.0

    def test_corner_coord_max_axes(self):
        r = Rect((1.0, 2.0), (3.0, 4.0))
        assert r.corner_coord(2) == 3.0
        assert r.corner_coord(3) == 4.0


class TestHelpers:
    def test_point_rect(self):
        r = point_rect((1.5, 2.5))
        assert r.is_point() and r.lo == (1.5, 2.5)

    def test_mbr_of_single(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert mbr_of([r]) == r

    def test_mbr_of_many(self):
        rects = [
            Rect((0.0, 5.0), (1.0, 6.0)),
            Rect((-2.0, 0.0), (0.5, 1.0)),
            Rect((3.0, 2.0), (4.0, 3.0)),
        ]
        assert mbr_of(rects) == Rect((-2.0, 0.0), (4.0, 6.0))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(ValueError):
            mbr_of([])

    def test_equality_and_hash(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0, 0), (1, 1))
        assert a == b and hash(a) == hash(b)
        assert a != Rect((0.0, 0.0), (1.0, 2.0))

    def test_unpacking(self):
        lo, hi = Rect((1.0, 2.0), (3.0, 4.0))
        assert lo == (1.0, 2.0) and hi == (3.0, 4.0)

    def test_repr_roundtrip_shape(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert "Rect" in repr(r)
