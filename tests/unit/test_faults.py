"""Fault-injection machinery and the reclaim-after-commit discipline.

Two concerns share this file: the :class:`FaultInjector` /
:class:`FaultInjectingStore` contract itself (deterministic scripted
faults on the global write sequence), and the allocator hazard the
shadow scheme must never reintroduce — a block freed in an uncommitted
epoch being handed out again before the commit flips, which would let a
crash resurrect the old block *and* keep the new one (a double life →
double free on the next reclaim, or silent corruption of committed
data).
"""

import pytest

from repro.iomodel.blockstore import BlockStore
from repro.storage import (
    FaultInjectingStore,
    FaultInjector,
    FileBlockStore,
    SimulatedCrash,
)

# ----------------------------------------------------------------------
# FaultInjector semantics
# ----------------------------------------------------------------------


def test_clean_crash_persists_the_write():
    injector = FaultInjector(crash_after=2, mode="clean")
    assert injector.filter(0, b"one") == b"one"
    with pytest.raises(SimulatedCrash) as err:
        injector.filter(1, b"two")
    assert err.value.partial_data == b"two"
    assert injector.crashed


def test_torn_crash_persists_a_strict_prefix():
    injector = FaultInjector(crash_after=1, mode="torn", seed=5)
    with pytest.raises(SimulatedCrash) as err:
        injector.filter(0, b"0123456789")
    partial = err.value.partial_data
    assert partial is not None
    assert 1 <= len(partial) < 10
    assert b"0123456789".startswith(partial)


def test_omit_crash_persists_nothing():
    injector = FaultInjector(crash_after=1, mode="omit")
    with pytest.raises(SimulatedCrash) as err:
        injector.filter(0, b"payload")
    assert err.value.partial_data is None


def test_dead_injector_stays_dead():
    injector = FaultInjector(crash_after=1)
    with pytest.raises(SimulatedCrash):
        injector.filter(0, b"x")
    writes = injector.writes
    with pytest.raises(SimulatedCrash) as err:
        injector.filter(0, b"y")
    assert err.value.partial_data is None
    assert injector.writes == writes  # a dead process issues no I/O


def test_determinism_under_seed():
    cuts = []
    for _ in range(2):
        injector = FaultInjector(crash_after=1, mode="torn", seed=42)
        with pytest.raises(SimulatedCrash) as err:
            injector.filter(0, bytes(range(100)))
        cuts.append(err.value.partial_data)
    assert cuts[0] == cuts[1]


def test_bitflip_flips_exactly_one_bit():
    injector = FaultInjector(bitflip_at=1, seed=9)
    original = bytes(64)
    flipped = injector.filter(0, original)
    diff = [
        (a ^ b) for a, b in zip(original, flipped) if a != b
    ]
    assert len(diff) == 1 and bin(diff[0]).count("1") == 1
    assert not injector.crashed  # corruption in flight, no crash


def test_commit_event_clean_runs_action_torn_skips_it():
    ran = []
    injector = FaultInjector(crash_after=1, mode="clean")
    with pytest.raises(SimulatedCrash):
        with injector.commit_event("manifest"):
            ran.append("clean")
    injector = FaultInjector(crash_after=1, mode="torn")
    with pytest.raises(SimulatedCrash):
        with injector.commit_event("manifest"):
            ran.append("torn")
    assert ran == ["clean"]  # an atomic rename is never half-done


def test_commit_points_filter_by_tag():
    injector = FaultInjector()
    injector.filter(0, b"a")
    injector.mark_commit("store")
    injector.filter(0, b"b")
    with injector.commit_event("manifest"):
        pass
    assert injector.commit_points("store") == [1]
    assert injector.commit_points("manifest") == [3]
    assert injector.writes == 3


def test_injecting_store_wraps_the_simulated_store():
    injector = FaultInjector(crash_after=2, mode="clean")
    store = FaultInjectingStore(BlockStore(), injector)
    block = store.allocate(b"first")
    assert store.read(block) == b"first"
    with pytest.raises(SimulatedCrash):
        store.write(block, b"second")
    assert injector.crashed
    # Reads keep working on the wrapper (recovery inspects state).
    assert store.read(block) == b"first"


# ----------------------------------------------------------------------
# Reclaim-after-commit (the latent double-free hazard)
# ----------------------------------------------------------------------


def test_freed_committed_block_is_pending_until_commit(tmp_path):
    path = tmp_path / "s.bin"
    store = FileBlockStore.create(path, block_size=64)
    a = store.allocate(b"a" * 64)
    b = store.allocate(b"b" * 64)
    store.flush()
    assert store.pending_reclaim == ()
    store.free(a)
    # The committed physical slot must survive until the next flip.
    assert len(store.pending_reclaim) == 1
    store.allocate(b"c" * 64)
    assert len(store.pending_reclaim) == 1
    store.flush()
    assert store.pending_reclaim == ()
    store.close()


def test_fresh_block_freed_before_commit_skips_pending(tmp_path):
    # A block allocated *and* freed inside one epoch never had a
    # committed state to protect: its slot recycles immediately.
    path = tmp_path / "s.bin"
    store = FileBlockStore.create(path, block_size=64)
    a = store.allocate(b"a" * 64)
    store.free(a)
    assert store.pending_reclaim == ()
    store.close()


def test_uncommitted_free_never_clobbers_committed_data(tmp_path):
    """Regression for the reuse-before-commit hazard, under the
    injector: free a committed block, allocate a replacement, crash
    before the commit — the committed bytes must still be there."""
    path = tmp_path / "s.bin"
    store = FileBlockStore.create(path, block_size=64)
    a = store.allocate(b"a" * 64)
    b = store.allocate(b"b" * 64)
    store.flush()  # epoch 1: a, b durable
    store.close()

    injector = FaultInjector(crash_after=1, mode="clean")
    store = FileBlockStore.open(path, injector=injector)
    store.free(a)
    with pytest.raises(SimulatedCrash):
        # If the allocator reused a's physical slot, this payload
        # would land on the committed bytes; the write completes
        # (clean mode), then the process dies, pre-commit.
        store.allocate(b"X" * 64)
        store.flush()
    store.close()

    with FileBlockStore.open(path) as survivor:
        assert survivor.commit_epoch == 1
        assert survivor.read(a) == b"a" * 64
        assert survivor.read(b) == b"b" * 64
        assert survivor.recovery.rolled_back_blocks > 0


def test_pending_slots_reused_after_the_flip(tmp_path):
    # The counterpart: after the commit, reclaimed slots do recycle —
    # steady-state update traffic must not grow the file unboundedly.
    path = tmp_path / "s.bin"
    store = FileBlockStore.create(path, block_size=64)
    ids = [store.allocate(bytes([65 + i]) * 64) for i in range(4)]
    store.flush()
    grown = store.file_bytes()
    for round_ in range(8):
        for block_id in ids:
            store.write(block_id, bytes([97 + round_]) * 64)
        store.flush()
    assert store.file_bytes() <= grown + 2 * 64 * len(ids)
    store.close()
