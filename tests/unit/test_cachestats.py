"""Unit tests for the ghost-LRU reuse-distance tracker.

The load-bearing property is **exactness**: at every boundary budget,
``predicted_hits(budget)`` must equal the hit count of a brute-force
LRU cache of that size replaying the same access stream.  The bucketed
Mattson stack makes that O(#budgets) per access instead of O(stack
depth), but any ordering mistake in the bucket cascade shows up as a
count drift — so the oracle comparison runs over skewed, uniform and
adversarial streams.
"""

import random
from collections import OrderedDict

import pytest

from repro.obs import ReuseDistanceTracker, default_budgets
from repro.storage.paged import PageCacheStats


class LRUOracle:
    """Textbook LRU cache that only counts hits."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self._cache: OrderedDict[int, None] = OrderedDict()

    def touch(self, block_id: int) -> None:
        if block_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(block_id)
            return
        self._cache[block_id] = None
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)


def pareto_stream(rng: random.Random, blocks: int, length: int) -> list[int]:
    """A skewed access stream: low block ids are hot."""
    return [
        min(blocks - 1, int(rng.paretovariate(1.2)) - 1)
        for _ in range(length)
    ]


class TestDefaultBudgets:
    def test_ladder_brackets_capacity(self):
        budgets = default_budgets(256)
        assert 256 in budgets
        assert budgets == tuple(sorted(set(budgets)))
        assert budgets[0] >= 1
        assert budgets[-1] == 2048

    def test_tiny_capacity(self):
        budgets = default_budgets(1)
        assert budgets[0] == 1
        assert all(b >= 1 for b in budgets)


class TestGhostExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "blocks,budgets",
        [
            (20, (2, 4, 8, 16)),
            (100, (1, 3, 7, 50, 200)),
            (7, (2, 5, 9)),
        ],
    )
    def test_matches_brute_force_at_every_boundary(
        self, seed, blocks, budgets
    ):
        rng = random.Random(seed)
        stream = pareto_stream(rng, blocks, 4000)
        tracker = ReuseDistanceTracker(budgets=budgets)
        oracles = {b: LRUOracle(b) for b in budgets}
        for block in stream:
            tracker.record(block, is_leaf=True)
            for oracle in oracles.values():
                oracle.touch(block)
        for budget, oracle in oracles.items():
            assert tracker.predicted_hits(budget) == oracle.hits, (
                f"budget {budget}"
            )

    def test_sequential_scan_never_hits_below_working_set(self):
        tracker = ReuseDistanceTracker(budgets=(2, 4))
        for _ in range(3):
            for block in range(10):  # cyclic scan over 10 > 4 blocks
                tracker.record(block, is_leaf=True)
        assert tracker.predicted_hits(2) == 0
        assert tracker.predicted_hits(4) == 0

    def test_hot_loop_all_hits_at_capacity(self):
        tracker = ReuseDistanceTracker(budgets=(4, 8))
        for _ in range(5):
            for block in range(4):
                tracker.record(block, is_leaf=True)
        # First pass is cold; every later access hits in a 4-page cache.
        assert tracker.predicted_hits(4) == 16
        assert tracker.predicted_hits(8) == 16

    def test_non_boundary_budget_is_floor(self):
        tracker = ReuseDistanceTracker(budgets=(2, 8))
        for _ in range(3):
            for block in range(4):
                tracker.record(block, is_leaf=True)
        assert tracker.predicted_hits(5) == tracker.predicted_hits(2)


class TestTrackerViews:
    def test_curve_points_are_cumulative_and_bounded(self):
        rng = random.Random(7)
        tracker = ReuseDistanceTracker(capacity=16)
        for block in pareto_stream(rng, 60, 2000):
            tracker.record(block, is_leaf=block % 3 != 0)
        curve = tracker.miss_ratio_curve()
        assert [p.budget for p in curve] == list(tracker.budgets)
        hits = [p.hits for p in curve]
        assert hits == sorted(hits)  # bigger budget never hits less
        for point in curve:
            assert point.hits + point.misses == tracker.accesses
            assert 0.0 <= point.hit_ratio <= 1.0
            assert point.miss_ratio == pytest.approx(1 - point.hit_ratio)

    def test_observed_hits_reported_by_caller(self):
        tracker = ReuseDistanceTracker(capacity=4)
        tracker.record(1, is_leaf=True, hit=False)
        tracker.record(1, is_leaf=True, hit=True)
        tracker.record(2, is_leaf=True, hit=False)
        assert tracker.observed_hits == 1
        assert tracker.observed_hit_ratio == pytest.approx(1 / 3)

    def test_frequency_histogram_splits_leaf_internal(self):
        tracker = ReuseDistanceTracker(capacity=4)
        for _ in range(5):
            tracker.record(100, is_leaf=True)
        tracker.record(200, is_leaf=False)
        bands = tracker.frequency_histogram()
        assert sum(b.leaf_blocks for b in bands) == 1
        assert sum(b.internal_blocks for b in bands) == 1
        one_band = next(b for b in bands if b.lo == 1)
        assert one_band.internal_blocks == 1
        hot_band = next(b for b in bands if b.lo <= 5 <= b.hi)
        assert hot_band.leaf_blocks == 1
        assert all(b.blocks == b.leaf_blocks + b.internal_blocks for b in bands)

    def test_working_set_windows(self):
        tracker = ReuseDistanceTracker(capacity=4)
        for i in range(2000):
            tracker.record(i, is_leaf=True)  # never repeats
        sizes = tracker.working_set_sizes()
        assert sizes[1000] == 1000
        assert sizes[10_000] == 2000
        assert tracker.unique_blocks == 2000
        assert tracker.cold_misses == 2000

    def test_keep_log_records_stream(self):
        tracker = ReuseDistanceTracker(capacity=2, keep_log=True)
        tracker.record(5, is_leaf=True)
        tracker.record(6, is_leaf=False)
        assert tracker.log == [(5, True), (6, False)]

    def test_summary_is_json_ready(self):
        import json

        tracker = ReuseDistanceTracker(capacity=4)
        tracker.record(1, is_leaf=True, hit=False)
        tracker.record(1, is_leaf=True, hit=True)
        doc = json.loads(json.dumps(tracker.summary()))
        assert doc["accesses"] == 2
        assert doc["observed_hits"] == 1

    def test_rejects_empty_budgets(self):
        with pytest.raises(ValueError):
            ReuseDistanceTracker(budgets=(0, -3))


class TestPageCacheStats:
    def test_snapshot_is_independent_copy(self):
        stats = PageCacheStats(hits=5, misses=2, evictions=1, flushes=3)
        snap = stats.snapshot()
        stats.hits += 10
        assert snap.hits == 5
        assert snap.misses == 2
        assert snap.evictions == 1
        assert snap.flushes == 3

    def test_subtract_gives_interval_delta(self):
        before = PageCacheStats(hits=5, misses=2, evictions=1, flushes=3)
        after = PageCacheStats(hits=9, misses=4, evictions=1, flushes=7)
        delta = after - before
        assert (delta.hits, delta.misses) == (4, 2)
        assert (delta.evictions, delta.flushes) == (0, 4)
        assert delta.physical_reads == 2
        assert delta.physical_writes == 4
