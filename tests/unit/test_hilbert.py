"""Unit tests for the d-dimensional Hilbert curve."""

import pytest

from repro.geometry.hilbert import (
    hilbert_index,
    hilbert_point,
    hilbert_key_for_center,
    hilbert_key_for_corners,
)
from repro.geometry.rect import Rect, point_rect


class TestIntegerCurve:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_bijection_small_grids(self, dim, order):
        n = 1 << (dim * order)
        seen = set()
        for index in range(n):
            point = hilbert_point(index, dim, order)
            assert hilbert_index(point, order) == index
            seen.add(point)
        assert len(seen) == n

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("order", [2, 3])
    def test_consecutive_indices_are_grid_neighbours(self, dim, order):
        # The defining Hilbert property: the curve moves one grid step at
        # a time.
        prev = hilbert_point(0, dim, order)
        for index in range(1, 1 << (dim * order)):
            cur = hilbert_point(index, dim, order)
            l1 = sum(abs(a - b) for a, b in zip(prev, cur))
            assert l1 == 1, f"jump at index {index}: {prev} -> {cur}"
            prev = cur

    def test_2d_order1_visits_all_quadrants(self):
        points = {hilbert_point(i, 2, 1) for i in range(4)}
        assert points == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_curve_starts_at_origin(self):
        for dim in (1, 2, 3, 4):
            assert hilbert_point(0, dim, 4) == (0,) * dim

    def test_coordinate_out_of_grid_raises(self):
        with pytest.raises(ValueError):
            hilbert_index((4, 0), order=2)

    def test_negative_coordinate_raises(self):
        with pytest.raises(ValueError):
            hilbert_index((-1, 0), order=2)

    def test_index_out_of_curve_raises(self):
        with pytest.raises(ValueError):
            hilbert_point(16, 2, 2)

    def test_order_zero_raises(self):
        with pytest.raises(ValueError):
            hilbert_index((0, 0), order=0)

    def test_large_order_roundtrip(self):
        point = (123456, 654321)
        assert hilbert_point(hilbert_index(point, 20), 2, 20) == point


class TestRectangleKeys:
    BOUNDS = Rect((0.0, 0.0), (1.0, 1.0))

    def test_center_key_locality(self):
        # Nearby centers should have closer keys than far-apart centers,
        # on average; check a specific monotone-adjacent example.
        a = hilbert_key_for_center(point_rect((0.1, 0.1)), self.BOUNDS)
        b = hilbert_key_for_center(point_rect((0.100001, 0.1)), self.BOUNDS)
        c = hilbert_key_for_center(point_rect((0.9, 0.9)), self.BOUNDS)
        assert abs(a - b) < abs(a - c)

    def test_center_key_deterministic(self):
        r = Rect((0.2, 0.3), (0.4, 0.5))
        assert hilbert_key_for_center(r, self.BOUNDS) == hilbert_key_for_center(
            r, self.BOUNDS
        )

    def test_corner_key_distinguishes_extent(self):
        # Same center, different extent: the center key collides, the
        # corner key does not — the H vs H4 distinction.
        small = Rect((0.45, 0.45), (0.55, 0.55))
        large = Rect((0.25, 0.25), (0.75, 0.75))
        assert hilbert_key_for_center(
            small, self.BOUNDS
        ) == hilbert_key_for_center(large, self.BOUNDS)
        assert hilbert_key_for_corners(
            small, self.BOUNDS
        ) != hilbert_key_for_corners(large, self.BOUNDS)

    def test_keys_clamp_outside_bounds(self):
        outside = Rect((-5.0, -5.0), (-4.0, -4.0))
        key = hilbert_key_for_center(outside, self.BOUNDS)
        assert key == hilbert_key_for_center(point_rect((0.0, 0.0)), self.BOUNDS)

    def test_uniform_scaling_of_flat_bounds(self):
        # A wide flat dataset must be quantized at one scale: points with
        # the same x but different y (within the flat extent) fall in the
        # same or adjacent cells rather than being stretched over the
        # full grid (the Theorem 3 prerequisite).
        flat = Rect((0.0, 0.0), (1000.0, 1.0))
        low = hilbert_key_for_center(point_rect((500.0, 0.0)), flat)
        high = hilbert_key_for_center(point_rect((500.0, 1.0)), flat)
        far = hilbert_key_for_center(point_rect((900.0, 0.0)), flat)
        assert abs(low - high) < abs(low - far)

    def test_degenerate_bounds_axis(self):
        line_bounds = Rect((0.0, 0.5), (1.0, 0.5))
        key = hilbert_key_for_center(point_rect((0.3, 0.5)), line_bounds)
        assert key >= 0

    def test_corner_key_order_parameter(self):
        r = Rect((0.2, 0.3), (0.4, 0.5))
        k8 = hilbert_key_for_corners(r, self.BOUNDS, order=8)
        k16 = hilbert_key_for_corners(r, self.BOUNDS, order=16)
        assert k8 < (1 << 32) and k16 < (1 << 64)
