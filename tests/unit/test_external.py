"""Unit tests for the external-memory substrate: streams and sorting."""

import random

import pytest

from repro.external.memory import MemoryModel
from repro.external.sort import external_sort, sort_pass_bound
from repro.external.stream import BlockStream, StreamWriter, distribute
from repro.iomodel.blockstore import BlockStore


class TestMemoryModel:
    def test_basic_properties(self):
        mem = MemoryModel(memory_records=64, block_records=8)
        assert mem.memory_blocks == 8
        assert mem.merge_fanin == 7

    def test_blocks_for(self):
        mem = MemoryModel(memory_records=64, block_records=8)
        assert mem.blocks_for(0) == 0
        assert mem.blocks_for(1) == 1
        assert mem.blocks_for(8) == 1
        assert mem.blocks_for(9) == 2

    def test_fits_in_memory(self):
        mem = MemoryModel(memory_records=64, block_records=8)
        assert mem.fits_in_memory(64)
        assert not mem.fits_in_memory(65)

    def test_too_small_memory_raises(self):
        with pytest.raises(ValueError):
            MemoryModel(memory_records=8, block_records=8)

    def test_invalid_block_raises(self):
        with pytest.raises(ValueError):
            MemoryModel(memory_records=64, block_records=0)

    def test_minimum_fanin_is_two(self):
        mem = MemoryModel(memory_records=8, block_records=2)
        assert mem.merge_fanin >= 2


class TestBlockStream:
    def test_roundtrip(self, store):
        stream = BlockStream.from_records(store, list(range(25)), 8)
        assert len(stream) == 25
        assert stream.block_count == 4
        assert stream.read_all() == list(range(25))

    def test_iteration_order(self, store):
        stream = BlockStream.from_records(store, ["a", "b", "c"], 2)
        assert list(stream) == ["a", "b", "c"]

    def test_empty_stream(self, store):
        stream = BlockStream.empty(store, 8)
        assert len(stream) == 0 and stream.read_all() == []

    def test_read_costs_one_io_per_block(self, store):
        stream = BlockStream.from_records(store, list(range(16)), 4)
        before = store.counters.reads
        stream.read_all()
        assert store.counters.reads - before == 4

    def test_write_costs_one_io_per_block(self, store):
        before = store.counters.writes
        BlockStream.from_records(store, list(range(17)), 4)
        assert store.counters.writes - before == 5  # 4 full + 1 partial

    def test_stream_blocks_are_sequential(self, store):
        stream = BlockStream.from_records(store, list(range(32)), 4)
        assert stream.block_ids == sorted(stream.block_ids)
        store.counters.reset()
        stream.read_all()
        # After the first (positioning) read, all reads are sequential.
        assert store.counters.seq_reads == stream.block_count - 1

    def test_free_releases_blocks(self, store):
        stream = BlockStream.from_records(store, list(range(10)), 4)
        live_before = len(store)
        stream.free()
        assert len(store) == live_before - 3
        assert len(stream) == 0

    def test_writer_finish_twice_raises(self, store):
        writer = StreamWriter(store, 4)
        writer.append(1)
        writer.finish()
        with pytest.raises(RuntimeError):
            writer.finish()

    def test_writer_append_after_finish_raises(self, store):
        writer = StreamWriter(store, 4)
        writer.finish()
        with pytest.raises(RuntimeError):
            writer.append(1)

    def test_writer_extend(self, store):
        writer = StreamWriter(store, 4)
        writer.extend(range(10))
        assert writer.finish().read_all() == list(range(10))

    def test_invalid_block_records(self, store):
        with pytest.raises(ValueError):
            StreamWriter(store, 0)


class TestDistribute:
    def test_partition_by_parity(self, store):
        stream = BlockStream.from_records(store, list(range(20)), 4)
        buckets = distribute(stream, lambda x: x % 2, 2)
        assert buckets[0].read_all() == [x for x in range(20) if x % 2 == 0]
        assert buckets[1].read_all() == [x for x in range(20) if x % 2 == 1]

    def test_preserves_relative_order(self, store):
        stream = BlockStream.from_records(store, [3, 1, 4, 1, 5, 9, 2, 6], 3)
        buckets = distribute(stream, lambda x: 0 if x < 4 else 1, 2)
        assert buckets[0].read_all() == [3, 1, 1, 2]
        assert buckets[1].read_all() == [4, 5, 9, 6]

    def test_free_input_option(self, store):
        stream = BlockStream.from_records(store, list(range(8)), 4)
        distribute(stream, lambda x: 0, 1, free_input=True)
        assert len(stream) == 0

    def test_bad_classifier_raises(self, store):
        stream = BlockStream.from_records(store, [1], 4)
        with pytest.raises(ValueError):
            distribute(stream, lambda x: 5, 2)


class TestExternalSort:
    MEM = MemoryModel(memory_records=32, block_records=4)

    def test_sorts_random_data(self, store):
        rng = random.Random(3)
        data = [rng.randrange(1000) for _ in range(500)]
        stream = BlockStream.from_records(store, data, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == sorted(data)

    def test_sort_already_sorted(self, store):
        data = list(range(100))
        stream = BlockStream.from_records(store, data, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == data

    def test_sort_reverse(self, store):
        data = list(range(100, 0, -1))
        stream = BlockStream.from_records(store, data, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == sorted(data)

    def test_sort_with_duplicates_is_stable_multiset(self, store):
        rng = random.Random(5)
        data = [rng.randrange(5) for _ in range(200)]
        stream = BlockStream.from_records(store, data, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == sorted(data)

    def test_sort_by_key_function(self, store):
        data = [("b", 2), ("a", 9), ("c", 1)]
        stream = BlockStream.from_records(store, data, 2)
        out = external_sort(stream, key=lambda item: item[1], memory=self.MEM)
        assert out.read_all() == [("c", 1), ("b", 2), ("a", 9)]

    def test_unorderable_records_sort_by_key(self, store):
        # Records themselves aren't comparable; only the key is.
        data = [{"k": v} for v in [5, 1, 3]]
        stream = BlockStream.from_records(store, data, 2)
        out = external_sort(stream, key=lambda item: item["k"], memory=self.MEM)
        assert [r["k"] for r in out.read_all()] == [1, 3, 5]

    def test_empty_input(self, store):
        stream = BlockStream.empty(store, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == []

    def test_single_run_case(self, store):
        data = [3, 1, 2]
        stream = BlockStream.from_records(store, data, 4)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        assert out.read_all() == [1, 2, 3]

    def test_free_input(self, store):
        stream = BlockStream.from_records(store, [2, 1], 4)
        external_sort(stream, key=lambda x: x, memory=self.MEM, free_input=True)
        assert len(stream) == 0

    def test_io_within_sort_bound(self, store):
        rng = random.Random(9)
        n = 700
        data = [rng.random() for _ in range(n)]
        stream = BlockStream.from_records(store, data, 4)
        before = store.counters.snapshot()
        external_sort(stream, key=lambda x: x, memory=self.MEM)
        cost = (store.counters.snapshot() - before).total
        assert cost <= sort_pass_bound(n, self.MEM)

    def test_intermediate_runs_are_freed(self, store):
        rng = random.Random(11)
        data = [rng.random() for _ in range(300)]
        stream = BlockStream.from_records(store, data, 4)
        live_before = len(store)
        out = external_sort(stream, key=lambda x: x, memory=self.MEM)
        # Only the output stream's blocks remain beyond the input.
        assert len(store) == live_before + out.block_count
