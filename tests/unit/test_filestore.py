"""Unit tests for the on-disk file block store."""

import struct
import zlib

import pytest

from repro.iomodel.blockstore import BlockStore, FreedBlockError
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockStoreProtocol
from repro.storage.filestore import (
    FileBlockStore,
    HEADER_REGION,
    HEADER_SLOT,
    META_CAPACITY,
    StorageError,
)


@pytest.fixture
def path(tmp_path):
    return tmp_path / "store.fbs"


class TestCreateAndLayout:
    def test_satisfies_store_protocol(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            assert isinstance(store, BlockStoreProtocol)

    def test_fresh_store_is_empty(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            assert len(store) == 0
            assert store.allocated_ever == 0
            assert store.bytes_used() == 0

    def test_block_offsets_are_fixed(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            store.allocate(b"first")
            store.allocate(b"second")
        raw = path.read_bytes()
        assert raw[HEADER_REGION : HEADER_REGION + 5] == b"first"
        assert raw[HEADER_REGION + 64 : HEADER_REGION + 70] == b"second"

    def test_payload_zero_padded_to_block(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"abc")
            data = store.read(bid)
            assert len(data) == 64
            assert data == b"abc" + b"\x00" * 61

    def test_none_payload_is_zero_block(self, path):
        with FileBlockStore.create(path, block_size=32) as store:
            assert store.read(store.allocate(None)) == b"\x00" * 32

    def test_oversized_payload_rejected(self, path):
        with FileBlockStore.create(path, block_size=16) as store:
            with pytest.raises(ValueError):
                store.allocate(b"x" * 17)

    def test_tiny_block_size_rejected(self, path):
        with pytest.raises(ValueError):
            FileBlockStore.create(path, block_size=4)

    def test_memory_backed_store(self):
        store = FileBlockStore.create(None, block_size=32)
        bid = store.allocate(b"ram")
        assert store.read(bid)[:3] == b"ram"
        store.close()

    def test_metadata_roundtrip(self, path):
        with FileBlockStore.create(path, block_size=64, meta=b"tree-info"):
            pass
        with FileBlockStore.open(path) as store:
            assert store.metadata == b"tree-info"

    def test_set_metadata_persists(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            store.set_metadata(b"later")
        with FileBlockStore.open(path) as store:
            assert store.metadata == b"later"

    def test_metadata_capacity_enforced(self, path):
        with pytest.raises(ValueError):
            FileBlockStore.create(
                path, block_size=64, meta=b"x" * (META_CAPACITY + 1)
            )


class TestAccounting:
    def test_same_counting_as_simulated_store(self, path):
        """The file store and the simulated store count identically."""
        sim = BlockStore(block_size=64)
        with FileBlockStore.create(path, block_size=64) as real:
            for store, payload in ((sim, "a"), (real, b"a")):
                x = store.allocate(payload)
                y = store.allocate(payload)
                store.read(x)
                store.read(y)
                store.write(x, payload)
                store.peek(y)
            assert real.counters.reads == sim.counters.reads == 2
            assert real.counters.writes == sim.counters.writes == 3
            assert real.counters.seq_reads == sim.counters.seq_reads

    def test_sequential_allocation_detected(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            for i in range(5):
                store.allocate(b"x")
            # First write has no predecessor; the next four are sequential.
            assert store.counters.seq_writes == 4

    def test_peek_and_free_cost_nothing(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
            before = store.counters.total
            store.peek(bid)
            store.free(bid)
            assert store.counters.total == before

    def test_shared_counters(self, path):
        counters = IOCounters()
        with FileBlockStore.create(
            path, block_size=64, counters=counters
        ) as store:
            store.allocate(b"x")
            assert counters.writes == 1


class TestFreelist:
    def test_free_then_reuse_lifo(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            ids = [store.allocate(b"x") for _ in range(4)]
            store.free(ids[1])
            store.free(ids[2])
            assert store.allocate(b"y") == ids[2]
            assert store.allocate(b"y") == ids[1]
            assert store.allocate(b"y") == 4  # freelist empty: file grows

    def test_double_free_raises(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
            store.free(bid)
            with pytest.raises(FreedBlockError, match="double free"):
                store.free(bid)

    def test_read_after_free_raises(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
            store.free(bid)
            with pytest.raises(FreedBlockError, match="read-after-free"):
                store.read(bid)
            with pytest.raises(FreedBlockError):
                store.write(bid, b"y")
            with pytest.raises(FreedBlockError):
                store.peek(bid)

    def test_unallocated_access_is_plain_key_error(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            with pytest.raises(KeyError) as excinfo:
                store.read(42)
            assert not isinstance(excinfo.value, FreedBlockError)
            with pytest.raises(KeyError):
                store.free(42)

    def test_reallocated_block_is_readable_again(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"old")
            store.free(bid)
            again = store.allocate(b"new")
            assert again == bid
            assert store.read(bid)[:3] == b"new"

    def test_freelist_survives_reopen(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            ids = [store.allocate(b"x") for _ in range(5)]
            store.free(ids[0])
            store.free(ids[3])
        with FileBlockStore.open(path) as store:
            assert len(store) == 3
            assert sorted(store.block_ids()) == [1, 2, 4]
            with pytest.raises(FreedBlockError):
                store.read(ids[3])
            # LIFO order is preserved across the reopen.
            assert store.allocate(b"y") == ids[3]
            assert store.allocate(b"y") == ids[0]


class TestReserveAndWriteBack:
    """The uncounted write-back half used by the dirty-page layer."""

    def test_reserve_claims_address_without_io(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            before = store.counters.total
            bid = store.reserve()
            assert bid == 0
            assert store.counters.total == before
            assert bid in store
            assert store.reserve() == 1

    def test_reserve_pops_freelist(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            ids = [store.allocate(b"x") for _ in range(3)]
            store.free(ids[1])
            assert store.reserve() == ids[1]
            assert store.reserve() == 3

    def test_write_back_is_uncounted_and_persists(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.reserve()
            before = store.counters.total
            store.write_back(bid, b"deferred")
            assert store.counters.total == before
            assert store.peek(bid)[:8] == b"deferred"
        with FileBlockStore.open(path) as store:
            assert store.peek(bid)[:8] == b"deferred"

    def test_write_back_checks_liveness(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
            store.free(bid)
            with pytest.raises(FreedBlockError):
                store.write_back(bid, b"y")
            with pytest.raises(KeyError):
                store.write_back(42, b"y")

    def test_reserved_never_written_block_survives_reopen(self, path):
        # A reserved block freed before any flush must not leave the
        # file shorter than the header promises.
        with FileBlockStore.create(path, block_size=64) as store:
            store.allocate(b"x")
            bid = store.reserve()
            store.free(bid)
        with FileBlockStore.open(path) as store:
            assert len(store) == 1
            assert store.allocate(b"y") == bid

    def test_reserve_readonly_raises(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            store.allocate(b"x")
        with FileBlockStore.open(path, readonly=True) as store:
            assert store.readonly
            with pytest.raises(StorageError, match="read-only"):
                store.reserve()
            with pytest.raises(StorageError, match="read-only"):
                store.write_back(0, b"y")


class TestReopen:
    def test_payloads_survive_reopen(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            ids = [store.allocate(bytes([i]) * 8) for i in range(3)]
        with FileBlockStore.open(path) as store:
            for i, bid in enumerate(ids):
                assert store.read(bid)[:8] == bytes([i]) * 8

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no index file"):
            FileBlockStore.open(tmp_path / "nope.fbs")

    def test_open_bad_magic(self, path):
        path.write_bytes(b"JUNK" + b"\x00" * HEADER_REGION)
        with pytest.raises(StorageError, match="bad magic"):
            FileBlockStore.open(path)

    def test_open_corrupt_block_size(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            store.allocate(b"x")
        raw = bytearray(path.read_bytes())
        # Zero the block_size field (the I right after magic + version)
        # in *both* header slots, recomputing each slot's checksum so
        # the sanity check — not the checksum — is what rejects it.
        for base in (0, HEADER_SLOT):
            struct.pack_into("<I", raw, base + 6, 0)
            crc = zlib.crc32(bytes(raw[base : base + HEADER_SLOT - 4]))
            struct.pack_into("<I", raw, base + HEADER_SLOT - 4, crc)
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="block size"):
            FileBlockStore.open(path)

    def test_open_truncated_file(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            for _ in range(4):
                store.allocate(b"x")
        raw = path.read_bytes()
        path.write_bytes(raw[: HEADER_REGION + 64])  # lose three blocks
        with pytest.raises(StorageError, match="promises"):
            FileBlockStore.open(path)

    def test_open_corrupt_freelist(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
            store.free(bid)
        raw = bytearray(path.read_bytes())
        # Point the freed block's next pointer at itself (a cycle).
        struct.pack_into("<Q", raw, HEADER_REGION + bid * 64, bid)
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="freelist"):
            FileBlockStore.open(path)

    def test_readonly_blocks_mutation(self, path):
        with FileBlockStore.create(path, block_size=64) as store:
            bid = store.allocate(b"x")
        with FileBlockStore.open(path, readonly=True) as store:
            assert store.read(bid)[:1] == b"x"
            with pytest.raises(StorageError, match="read-only"):
                store.allocate(b"y")
            with pytest.raises(StorageError, match="read-only"):
                store.write(bid, b"y")
            with pytest.raises(StorageError, match="read-only"):
                store.free(bid)

    def test_close_is_idempotent(self, path):
        store = FileBlockStore.create(path, block_size=64)
        store.close()
        store.close()


class TestMmap:
    """The opt-in mmap-backed access path: same bytes, same accounting."""

    def _packed(self, path, blocks=6):
        with FileBlockStore.create(path, block_size=64, meta=b"M") as store:
            return [store.allocate(bytes([65 + i]) * 8) for i in range(blocks)]

    def test_reads_identical_to_plain_open(self, path):
        ids = self._packed(path)
        with FileBlockStore.open(path) as plain, FileBlockStore.open(
            path, mmap=True
        ) as mapped:
            assert mapped.mmapped and not plain.mmapped
            for bid in ids:
                assert mapped.read(bid) == plain.read(bid)
            assert mapped.counters.reads == plain.counters.reads
            assert mapped.metadata == plain.metadata

    def test_peek_is_uncounted(self, path):
        ids = self._packed(path)
        with FileBlockStore.open(path, mmap=True) as store:
            before = store.counters.reads
            assert store.peek(ids[0])[:8] == b"A" * 8
            assert store.counters.reads == before

    def test_readonly_mmap_blocks_mutation(self, path):
        ids = self._packed(path)
        with FileBlockStore.open(path, readonly=True, mmap=True) as store:
            assert store.read(ids[0])[:1] == b"A"
            with pytest.raises(StorageError, match="read-only"):
                store.write(ids[0], b"nope")

    def test_writes_through_mapping_persist(self, path):
        ids = self._packed(path)
        with FileBlockStore.open(path, mmap=True) as store:
            store.write(ids[1], b"updated")
            fresh = store.allocate(b"appended")  # grows file + mapping
            store.free(ids[0])
        with FileBlockStore.open(path) as store:  # plain reopen
            assert store.read(ids[1])[:7] == b"updated"
            assert store.read(fresh)[:8] == b"appended"
            assert ids[0] not in store

    def test_growth_beyond_initial_mapping(self, path):
        self._packed(path, blocks=1)
        with FileBlockStore.open(path, mmap=True) as store:
            new_ids = [store.allocate(b"grow") for _ in range(50)]
        with FileBlockStore.open(path, mmap=True) as store:
            for bid in new_ids:
                assert store.read(bid)[:4] == b"grow"

    def test_reserve_write_back_under_mmap(self, path):
        self._packed(path, blocks=2)
        with FileBlockStore.open(path, mmap=True) as store:
            bid = store.reserve()
            writes_before = store.counters.writes
            store.write_back(bid, b"deferred")
            assert store.counters.writes == writes_before  # uncounted
        with FileBlockStore.open(path) as store:
            assert store.read(bid)[:8] == b"deferred"

    def test_freelist_pop_reads_mapping(self, path):
        ids = self._packed(path, blocks=3)
        with FileBlockStore.open(path, mmap=True) as store:
            store.free(ids[2])
            store.free(ids[0])
            assert store.allocate(b"reuse") == ids[0]  # LIFO freelist
            assert store.allocate(b"reuse") == ids[2]
