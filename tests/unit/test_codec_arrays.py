"""Codec array decoding and golden-block layout tests.

The on-disk node layout is a format contract (the paper's 36-byte
entries, Section 3.1): the structure-of-arrays decoder must read exactly
the bytes :meth:`NodeCodec.encode` writes, and the encoded bytes must
never drift — the golden constants below are the recorded layout, so any
change to the format fails here before it corrupts an existing index.
"""

import hashlib

import pytest

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.iomodel.codec import HEADER_BYTES, NodeCodec, entry_size
from repro.rtree.node import Node, NodeFrame

from tests.conftest import random_rects

#: Fixed nodes with exactly representable coordinates, and the recorded
#: bytes they encode to (hex prefix of the occupied region + sha256 of
#: the full zero-padded 4096-byte block).
GOLDEN_LEAF_ENTRIES = [
    (Rect((0.0, 0.25), (0.5, 1.0)), 7),
    (Rect((0.125, 0.125), (0.375, 0.875)), 42),
    (Rect((0.5, 0.0), (1.0, 0.75)), 4294967295),  # max uint32 pointer
]
GOLDEN_LEAF_PREFIX = (
    "01030000000000000000000000000000000000d03f000000000000e03f"
    "000000000000f03f07000000000000000000c03f000000000000c03f"
    "000000000000d83f000000000000ec3f2a000000000000000000e03f"
    "0000000000000000000000000000f03f000000000000e83fffffffff"
)
GOLDEN_LEAF_SHA256 = (
    "4fec00cc5d03f35a6fcfbf3312b0d82a54cbab423adcd82b07baefabe4af6852"
)
GOLDEN_INTERNAL_ENTRIES = [
    (Rect((0.0, 0.0), (0.5, 0.5)), 2),
    (Rect((0.25, 0.5), (1.0, 1.0)), 3),
]
GOLDEN_INTERNAL_PREFIX = (
    "000200000000000000000000000000000000000000000000000000e03f"
    "000000000000e03f02000000000000000000d03f000000000000e03f"
    "000000000000f03f000000000000f03f03000000"
)
GOLDEN_INTERNAL_SHA256 = (
    "86647ade40406a37accb466a55c218e8ef4335384d195a68fefbb7e1b62ad28a"
)


@pytest.fixture
def codec():
    return NodeCodec(dim=2, block_size=4096)


class TestGoldenBlocks:
    def test_leaf_block_bytes_are_stable(self, codec):
        block = codec.encode(True, GOLDEN_LEAF_ENTRIES)
        used = HEADER_BYTES + 3 * entry_size(2)
        assert block[:used].hex() == GOLDEN_LEAF_PREFIX
        assert block[used:] == b"\x00" * (4096 - used)
        assert hashlib.sha256(block).hexdigest() == GOLDEN_LEAF_SHA256

    def test_internal_block_bytes_are_stable(self, codec):
        block = codec.encode(False, GOLDEN_INTERNAL_ENTRIES)
        used = HEADER_BYTES + 2 * entry_size(2)
        assert block[:used].hex() == GOLDEN_INTERNAL_PREFIX
        assert hashlib.sha256(block).hexdigest() == GOLDEN_INTERNAL_SHA256

    @pytest.mark.parametrize(
        "is_leaf,entries",
        [(True, GOLDEN_LEAF_ENTRIES), (False, GOLDEN_INTERNAL_ENTRIES)],
        ids=["leaf", "internal"],
    )
    def test_golden_blocks_round_trip_byte_exact(
        self, codec, is_leaf, entries
    ):
        block = codec.encode(is_leaf, entries)
        # Entry-level decode.
        got_leaf, got_entries = codec.decode(block)
        assert (got_leaf, got_entries) == (is_leaf, entries)
        assert codec.encode(got_leaf, got_entries) == block
        # Array decode, re-encoded through a frame-built node.
        flag, lo, hi, ptrs = codec.decode_arrays(block)
        node = Node.from_frame(NodeFrame(flag, lo, hi, ptrs))
        assert codec.encode(node.is_leaf, node.entries) == block


class TestDecodeArrays:
    def test_matches_entry_decode(self, codec):
        entries = random_rects(40, seed=21)
        block = codec.encode(True, entries)
        is_leaf, lo, hi, ptrs = codec.decode_arrays(block)
        assert is_leaf is True
        assert ptrs == [pointer for _, pointer in entries]
        frame = NodeFrame(is_leaf, lo, hi, ptrs)
        assert frame.entries() == codec.decode(block)[1]

    def test_empty_node(self, codec):
        block = codec.encode(False, [])
        is_leaf, lo, hi, ptrs = codec.decode_arrays(block)
        assert is_leaf is False
        assert kernels.table_len(lo) == 0
        assert ptrs == []

    def test_rejects_wrong_block_size(self, codec):
        with pytest.raises(ValueError, match="expected 4096"):
            codec.decode_arrays(b"\x00" * 100)

    def test_table_kind_matches_backend(self, codec):
        block = codec.encode(True, random_rects(5, seed=2))
        _, lo, _, _ = codec.decode_arrays(block)
        if kernels.HAVE_NUMPY:
            assert isinstance(lo, kernels.np.ndarray)
            assert lo.dtype == kernels.np.float64
            assert lo.flags["C_CONTIGUOUS"]
            assert lo.flags["WRITEABLE"]  # copied out of the frombuffer view
        else:
            assert isinstance(lo, tuple)

    def test_non_power_of_two_coordinates_round_trip(self, codec):
        # Arbitrary doubles (not exactly representable decimals) must
        # survive encode -> decode_arrays -> encode bit-for-bit.
        entries = random_rects(60, seed=33)
        block = codec.encode(True, entries)
        flag, lo, hi, ptrs = codec.decode_arrays(block)
        node = Node.from_frame(NodeFrame(flag, lo, hi, ptrs))
        assert codec.encode(flag, node.entries) == block

    def test_other_dimensions(self):
        for dim in (1, 3, 4):
            codec = NodeCodec(dim=dim, block_size=4096)
            entries = [
                (Rect((0.25,) * dim, (0.75,) * dim), 11),
                (Rect((0.0,) * dim, (1.0,) * dim), 12),
            ]
            block = codec.encode(True, entries)
            flag, lo, hi, ptrs = codec.decode_arrays(block)
            frame = NodeFrame(flag, lo, hi, ptrs)
            assert frame.entries() == entries
            assert codec.encode(flag, frame.entries()) == block
