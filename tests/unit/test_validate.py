"""Unit tests for the invariant checker and utilization statistics."""

import pytest

from repro.bulk.base import pack_ordered
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.rtree.validate import (
    RTreeInvariantError,
    utilization,
    validate_rtree,
)

from tests.conftest import random_rects


def packed_tree(store, n=100, fanout=8):
    return pack_ordered(store, random_rects(n, seed=2), fanout)


class TestValidate:
    def test_valid_tree_passes(self, store):
        tree = packed_tree(store)
        validate_rtree(tree, expect_size=100)

    def test_wrong_expected_size(self, store):
        tree = packed_tree(store)
        with pytest.raises(RTreeInvariantError, match="expected 99"):
            validate_rtree(tree, expect_size=99)

    def test_detects_loose_parent_mbr(self, store):
        tree = packed_tree(store)
        root = tree.peek_node(tree.root_id)
        rect, child = root.entries[0]
        root.entries[0] = (rect.union(Rect((5.0, 5.0), (9.0, 9.0))), child)
        with pytest.raises(RTreeInvariantError, match="exact"):
            validate_rtree(tree)

    def test_detects_overflow_node(self, store):
        tree = packed_tree(store, fanout=8)
        _, leaf = next(tree.iter_leaves())
        for i in range(10):
            leaf.add(Rect((0, 0), (0.1, 0.1)), tree.register_object(f"extra{i}"))
        # Several invariants break at once (fan-out, parent MBR, size);
        # any of them must be reported.
        with pytest.raises(RTreeInvariantError):
            validate_rtree(tree)

    def test_detects_unknown_object_id(self, store):
        tree = packed_tree(store)
        block_id, leaf = next(tree.iter_leaves())
        rect, _ = leaf.entries[0]
        leaf.entries[0] = (rect, 999_999)
        with pytest.raises(RTreeInvariantError, match="unknown object"):
            validate_rtree(tree)

    def test_detects_dangling_child_pointer(self, store):
        tree = packed_tree(store, n=200)
        root = tree.peek_node(tree.root_id)
        _, child_id = root.entries[0]
        tree.store.free(child_id)
        with pytest.raises(RTreeInvariantError, match="freed block"):
            validate_rtree(tree)

    def test_detects_shared_subtree(self, store):
        tree = packed_tree(store, n=200)
        root = tree.peek_node(tree.root_id)
        if root.is_leaf:
            pytest.skip("tree too small")
        rect0, child0 = root.entries[0]
        root.entries[1] = (rect0, child0)
        with pytest.raises(RTreeInvariantError):
            validate_rtree(tree)

    def test_detects_uneven_leaf_depth(self, store):
        tree = packed_tree(store, n=200, fanout=6)
        root = tree.peek_node(tree.root_id)
        # Replace a subtree entry with a direct leaf: leaves now at
        # different depths.
        leaf = Node(True, [(Rect((0, 0), (0.1, 0.1)), tree.register_object("x"))])
        leaf_id = store.allocate(leaf)
        root.entries[0] = (leaf.mbr(), leaf_id)
        tree.size = sum(len(l.entries) for _, l in tree.iter_leaves())
        with pytest.raises(RTreeInvariantError, match="multiple levels"):
            validate_rtree(tree)

    def test_min_fill_enforcement(self, store):
        tree = packed_tree(store, n=100, fanout=8)
        # Packed leaves are full except the last; demanding full leaves
        # everywhere may or may not pass, but demanding more than the
        # fan-out must fail on every non-root node.
        with pytest.raises(RTreeInvariantError):
            validate_rtree(tree, min_node_fill=9)

    def test_wrong_height_detected(self, store):
        tree = packed_tree(store, n=200)
        tree.height += 1
        with pytest.raises(RTreeInvariantError, match="height"):
            validate_rtree(tree)

    def test_wrong_size_detected(self, store):
        tree = packed_tree(store)
        tree.size -= 1
        with pytest.raises(RTreeInvariantError, match="size"):
            validate_rtree(tree)


class TestValidationReport:
    def test_report_counts(self, store):
        tree = packed_tree(store, n=200, fanout=8)
        report = validate_rtree(tree, expect_size=200)
        assert report.height == tree.height
        assert report.size == 200
        assert report.levels[0].level == 0 and report.levels[0].nodes == 1
        assert report.levels[-1].leaf
        assert sum(l.entries for l in report.levels if l.leaf) == 200
        assert report.nodes == tree.node_count()
        # Every non-root node's MBR was checked against its parent entry.
        assert report.mbr_checks == report.nodes - 1

    def test_single_leaf_report(self, store):
        tree = packed_tree(store, n=5, fanout=8)
        report = validate_rtree(tree)
        assert report.levels == (
            type(report.levels[0])(level=0, nodes=1, entries=5, leaf=True),
        )
        assert report.mbr_checks == 0


class TestValidationIsQuiet:
    """Validating or quality-walking an index must not perturb the
    physical cache statistics or the ghost-LRU tracker — the regression
    the ``quiet_peek`` path exists for."""

    @pytest.fixture
    def analytics_tree(self, tmp_path):
        from repro.prtree.prtree import build_prtree
        from repro.storage import open_index, pack_tree

        data = random_rects(600, seed=13)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "quiet.pack"
        pack_tree(tree, path, block_size=1024)
        with open_index(
            path,
            values=dict(tree.objects),
            cache_pages=8,
            readonly=True,
            cache_analytics=True,
        ) as paged:
            yield paged

    @staticmethod
    def observability_state(tree):
        stats = tree.page_stats
        tracker = tree.page_store.tracker
        return (
            stats.hits,
            stats.misses,
            stats.evictions,
            tracker.unique_blocks,
            tracker.cold_misses,
        )

    def test_validate_leaves_stats_untouched(self, analytics_tree):
        from repro.rtree.query import QueryEngine

        # Warm the cache so both hit and miss paths have history.
        QueryEngine(analytics_tree).query(Rect((0.2, 0.2), (0.7, 0.7)))
        before = self.observability_state(analytics_tree)
        validate_rtree(analytics_tree)
        assert self.observability_state(analytics_tree) == before

    def test_tree_quality_leaves_stats_untouched(self, analytics_tree):
        from repro.obs.health import tree_quality
        from repro.rtree.query import QueryEngine

        QueryEngine(analytics_tree).query(Rect((0.2, 0.2), (0.7, 0.7)))
        before = self.observability_state(analytics_tree)
        tree_quality(analytics_tree)
        assert self.observability_state(analytics_tree) == before


class TestUtilization:
    def test_packed_tree_is_nearly_full(self, store):
        tree = pack_ordered(store, random_rects(1000, seed=3), 10)
        u = utilization(tree)
        assert u.leaf_fill > 0.99
        assert u.leaf_nodes == 100
        assert u.data_entries == 1000

    def test_single_leaf_tree(self, store):
        tree = pack_ordered(store, random_rects(5, seed=1), 10)
        u = utilization(tree)
        assert u.leaf_nodes == 1 and u.internal_nodes == 0
        assert u.leaf_fill == 0.5

    def test_nodes_property(self, store):
        tree = pack_ordered(store, random_rects(300, seed=1), 8)
        u = utilization(tree)
        assert u.nodes == tree.node_count()
