"""Set-at-a-time window batches: ``query_batch`` and the server path.

The contract under test (``docs/query-engine.md``): a batch traversal
returns **bit-identical** results to running each window solo, per-query
``leaf_reads``/``internal_visits``/``reported`` equal the solo run
(as-if-solo accounting), and the store sees *fewer* logical reads
because shared pages are fetched once per batch.
"""

import pytest

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine
from repro.server import CountRequest, QueryServer, WindowRequest

from tests.conftest import random_rects, random_windows


@pytest.fixture(scope="module")
def tree():
    return build_prtree(BlockStore(), random_rects(1500, seed=41), 16)


@pytest.fixture(scope="module")
def windows():
    return random_windows(12, seed=42)


class TestQueryBatch:
    def test_results_identical_to_solo(self, tree, windows):
        batch_matches, _ = QueryEngine(tree).query_batch(windows)
        for window, got in zip(windows, batch_matches):
            want, _ = QueryEngine(tree).query(window)
            assert got == want  # same matches, same order

    def test_stats_are_as_if_solo(self, tree, windows):
        _, batch_stats = QueryEngine(tree).query_batch(windows)
        for window, got in zip(windows, batch_stats):
            _, want = QueryEngine(tree).query(window)
            assert got.leaf_reads == want.leaf_reads
            assert got.internal_visits == want.internal_visits
            assert got.reported == want.reported
            assert got.queries == 1

    def test_store_reads_deduplicated(self, tree, windows):
        counters = tree.store.counters
        before = counters.reads
        QueryEngine(tree).query_batch(windows)
        batch_reads = counters.reads - before
        before = counters.reads
        for window in windows:
            QueryEngine(tree).query(window)
        solo_reads = counters.reads - before
        assert batch_reads < solo_reads

    def test_internal_misses_attributed_once(self, tree, windows):
        _, batch_stats = QueryEngine(tree).query_batch(windows)
        solo_total = 0
        for window in windows:
            _, stats = QueryEngine(tree).query(window)
            solo_total += stats.internal_reads
        assert sum(s.internal_reads for s in batch_stats) <= solo_total
        # The root miss lands on exactly one query of the batch.
        assert sum(s.internal_reads for s in batch_stats) >= 1

    def test_totals_accumulate(self, tree, windows):
        engine = QueryEngine(tree)
        _, batch_stats = engine.query_batch(windows)
        assert engine.totals.queries == len(windows)
        assert engine.totals.reported == sum(
            s.reported for s in batch_stats
        )

    def test_empty_and_singleton_batches(self, tree, windows):
        engine = QueryEngine(tree)
        matches, stats = engine.query_batch([])
        assert matches == [] and stats == []
        (matches,), (stats,) = engine.query_batch(windows[:1])
        want_matches, want_stats = QueryEngine(tree).query(windows[0])
        assert matches == want_matches
        assert stats.leaf_reads == want_stats.leaf_reads

    def test_disjoint_window_matches_nothing(self, tree):
        far = Rect((5.0, 5.0), (6.0, 6.0))
        (matches,), (stats,) = QueryEngine(tree).query_batch([far])
        assert matches == []
        assert stats.reported == 0

    def test_other_tree_variant(self, windows):
        hil = build_hilbert(BlockStore(), random_rects(800, seed=43), 9)
        batch_matches, batch_stats = QueryEngine(hil).query_batch(windows)
        for window, got_m, got_s in zip(windows, batch_matches, batch_stats):
            want_m, want_s = QueryEngine(hil).query(window)
            assert got_m == want_m
            assert got_s.leaf_reads == want_s.leaf_reads


class TestServerBatchWindows:
    def _window_batch(self, windows):
        return [WindowRequest(w) for w in windows]

    def test_results_match_per_request_execution(self, tree, windows):
        plain = QueryServer(tree)
        batched = QueryServer(tree, batch_windows=True)
        requests = self._window_batch(windows)
        want = plain.submit(list(requests))
        got = batched.submit(list(requests))
        for a, b in zip(got.results, want.results):
            assert a.value == b.value
            assert a.stats.leaf_reads == b.stats.leaf_reads
            assert a.stats.internal_visits == b.stats.internal_visits
            assert a.stats.reported == b.stats.reported
        assert got.leaf_ios == want.leaf_ios

    def test_batch_path_reduces_store_reads(self, tree, windows):
        counters = tree.store.counters
        requests = self._window_batch(windows)
        before = counters.reads
        QueryServer(tree).submit(list(requests))
        plain_reads = counters.reads - before
        before = counters.reads
        QueryServer(tree, batch_windows=True).submit(list(requests))
        batch_reads = counters.reads - before
        assert batch_reads < plain_reads

    def test_dedup_still_applies(self, tree, windows):
        server = QueryServer(tree, batch_windows=True)
        repeated = self._window_batch(windows) + self._window_batch(windows)
        report = server.submit(repeated)
        assert report.dedup_hits == len(windows)
        for i, result in enumerate(report.results):
            assert result.value == report.results[i % len(windows)].value

    def test_mixed_batches_fall_back_per_request(self, tree, windows):
        server = QueryServer(tree, batch_windows=True)
        requests = [
            WindowRequest(windows[0]),
            CountRequest(windows[1]),
            WindowRequest(windows[2]),
        ]
        report = server.submit(requests)
        want_w0, _ = QueryEngine(tree).query(windows[0])
        assert report.results[0].value == want_w0
        count = report.results[1].value
        want_count, _ = QueryEngine(tree).query(windows[1])
        assert count == len(want_count)

    def test_single_window_runs_solo(self, tree, windows):
        server = QueryServer(tree, batch_windows=True)
        report = server.submit([WindowRequest(windows[0])])
        want, _ = QueryEngine(tree).query(windows[0])
        assert report.results[0].value == want

    def test_default_is_off(self, tree):
        assert QueryServer(tree).batch_windows is False
