"""Run the doctest examples embedded in module/class docstrings.

These are the first snippets a new user copies; they must execute.
"""

import doctest

import pytest

import repro
import repro.geometry.rect
import repro.prtree.logmethod


@pytest.mark.parametrize(
    "module",
    [repro, repro.geometry.rect, repro.prtree.logmethod],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
