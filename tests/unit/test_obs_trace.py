"""Tracer sampling rules, span recording, and the Chrome-trace export.

Covers the two sampling rules of docs/observability.md (head sampling
at begin, always-emit-if-slow at finish), the span/event recording API,
and the full write → load → nesting-check round trip the CI smoke step
leans on.
"""

import json

import pytest

from repro.obs import (
    Trace,
    TraceWriter,
    Tracer,
    activate_trace,
    check_span_nesting,
    current_trace,
    load_trace_events,
)


class TestSampling:
    def test_full_sampling_traces_everything(self):
        tracer = Tracer(sample_rate=1.0, keep_finished=True)
        traces = [tracer.begin("r", "window") for _ in range(20)]
        assert all(t is not None and t.sampled for t in traces)
        for t in traces:
            assert tracer.finish(t)
        assert tracer.emitted == 20

    def test_zero_sampling_without_threshold_is_dropped_at_begin(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.begin("r", "window") is None
        # Dropped begins cost nothing downstream:
        assert tracer.finish(None) is False
        assert tracer.started == 0
        assert tracer.emitted == 0

    def test_head_sampling_is_deterministic_under_seed(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=42)
            decisions.append(
                [tracer.begin("r") is not None for _ in range(100)]
            )
        assert decisions[0] == decisions[1]
        assert 20 < sum(decisions[0]) < 80  # actually samples

    def test_slow_threshold_promotes_dropped_trace(self):
        # Head sampling at 0 still *builds* the trace when a slow
        # threshold is armed, and emits it when the duration crosses.
        tracer = Tracer(
            sample_rate=0.0, slow_threshold_s=0.0, keep_finished=True
        )
        trace = tracer.begin("r", "knn")
        assert trace is not None
        assert trace.sampled is False
        assert tracer.finish(trace) is True
        assert trace.slow is True
        assert tracer.slow == 1
        assert tracer.emitted == 1

    def test_fast_unsampled_trace_is_not_emitted(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=3600.0)
        trace = tracer.begin("r", "knn")
        assert tracer.finish(trace) is False
        assert tracer.emitted == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_threshold_s=-1.0)


class TestTraceRecording:
    def test_span_context_manager_times_the_body(self):
        trace = Trace(1, "r", "window", sampled=True)
        with trace.span("engine:window", cat="engine", index="main") as span:
            pass
        assert trace.spans == [span]
        assert span.end_s >= span.start_s
        assert span.args == {"index": "main"}

    def test_add_span_and_event(self):
        trace = Trace(1, "r", "window", sampled=True)
        span = trace.add_span("queue", 1.0, 2.5, cat="service", lane="read")
        assert span.duration_s == pytest.approx(1.5)
        trace.event("dedup-hit", kind="window")
        assert len(trace.events) == 1
        assert trace.events[0][0] == "dedup-hit"

    def test_activate_trace_sets_and_restores_context(self):
        trace = Trace(1, "r", "window", sampled=True)
        assert current_trace() is None
        with activate_trace(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_activate_none_is_a_noop(self):
        with activate_trace(None):
            assert current_trace() is None


class TestTraceWriter:
    def _traced(self, tracer):
        trace = tracer.begin("req", "window")
        base = trace.start_s
        trace.add_span("admission", base, base + 0.001)
        trace.add_span("queue", base + 0.001, base + 0.003)
        trace.add_span("execute", base + 0.003, base + 0.010)
        trace.add_span(
            "shard:0", base + 0.004, base + 0.008, cat="shard", track=1
        )
        trace.event("note", detail="x")
        tracer.finish(trace, end_s=base + 0.010)
        return trace

    def test_round_trip_and_structure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            tracer = Tracer(writer)
            self._traced(tracer)
            self._traced(tracer)
        events = load_trace_events(path)
        assert writer.traces_written == 2
        assert len(events) == writer.events_written
        assert check_span_nesting(events) == []

        spans = [e for e in events if e.get("ph") == "X"]
        names = [e["name"] for e in spans]
        assert names.count("request:window") == 2
        assert names.count("shard:0") == 2
        # The request span carries the attribution ledger.
        request = next(e for e in spans if e["name"] == "request:window")
        assert set(request["args"]["io"]) == {
            "reads", "writes", "hits", "misses", "evictions", "flushes",
        }

        # Every track is announced as a named thread, and no two tracks
        # share a tid (concurrent spans never share a Perfetto row).
        meta = [e for e in events if e.get("ph") == "M"]
        tids = [e["tid"] for e in meta]
        assert len(tids) == len(set(tids)) == 4  # 2 traces x 2 tracks
        instants = [e for e in events if e.get("ph") == "i"]
        assert len(instants) == 2

    def test_file_is_valid_json_array_once_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            self._traced(Tracer(writer))
        parsed = json.loads(path.read_text())
        assert isinstance(parsed, list)

    def test_truncated_file_still_loads(self, tmp_path):
        # A crashed run never writes the closing bracket; the loader
        # has the same tolerance Chrome's does.
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        self._traced(Tracer(writer))
        writer._fh.flush()
        events = load_trace_events(path)
        assert any(e["name"] == "request:window" for e in events)
        writer.close()

    def test_emit_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        writer.close()
        writer.close()  # idempotent
        tracer = Tracer(writer)
        self._traced(tracer)
        assert writer.traces_written == 0


class TestNestingChecker:
    def test_detects_partial_overlap(self):
        events = [
            {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 0, "dur": 10},
            {"ph": "X", "pid": 1, "tid": 1, "name": "b", "ts": 5, "dur": 10},
        ]
        errors = check_span_nesting(events)
        assert len(errors) == 1
        assert "partially overlaps" in errors[0]

    def test_accepts_containment_siblings_and_other_rows(self):
        events = [
            {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 0, "dur": 10},
            {"ph": "X", "pid": 1, "tid": 1, "name": "b", "ts": 1, "dur": 3},
            {"ph": "X", "pid": 1, "tid": 1, "name": "c", "ts": 4, "dur": 6},
            # Same interval as "b" but on another row: independent.
            {"ph": "X", "pid": 1, "tid": 2, "name": "d", "ts": 2, "dur": 20},
            {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name"},
        ]
        assert check_span_nesting(events) == []
