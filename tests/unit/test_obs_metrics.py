"""MetricsRegistry exposition and the slow-query log ring.

The registry's contract is Prometheus text format 0.0.4: families with
HELP/TYPE headers, labeled samples with escaped values, histograms as
summaries with quantile labels plus exact _sum/_count.  The slow log's
contract is a bounded ring that never loses the *count* of threshold
crossings even when it drops old records.
"""

import pytest

from repro.obs import MetricsRegistry, SlowQueryLog
from repro.service.stats import LatencyHistogram


class TestCountersAndGauges:
    def test_counter_inc_and_negative_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total").labels()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_mirrors_and_rejects_regression(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total").labels()
        counter.set_total(10)
        counter.set_total(10)
        with pytest.raises(ValueError):
            counter.set_total(9)

    def test_gauge_moves_freely(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth").labels()
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3


class TestFamilies:
    def test_labeled_children_are_distinct_and_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_reqs_total", "", ("kind",))
        a = family.labels("knn")
        b = family.labels("window")
        assert a is not b
        assert family.labels("knn") is a

    def test_label_arity_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_reqs_total", "", ("kind", "lane"))
        with pytest.raises(ValueError):
            family.labels("knn")

    def test_re_registration_must_match(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total", "", ("kind",))
        # Same name+type+labels: the same family comes back.
        again = registry.counter("repro_reqs_total", "", ("kind",))
        assert again.name == "repro_reqs_total"
        with pytest.raises(ValueError):
            registry.gauge("repro_reqs_total", "", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("repro_reqs_total", "", ("lane",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("repro_ok", "", ("bad-label",))


class TestExposition:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "Requests.", ("kind",)
        ).labels("knn").inc(3)
        registry.gauge("repro_queue_depth", "Depth.").labels().set(7)
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.004):
            hist.observe(v)
        registry.histogram(
            "repro_latency_seconds", "Latency.", ("kind",)
        ).labels("knn").set_from(hist)

        text = registry.render_prometheus()
        assert "# HELP repro_requests_total Requests.\n" in text
        assert "# TYPE repro_requests_total counter\n" in text
        assert 'repro_requests_total{kind="knn"} 3\n' in text
        assert "repro_queue_depth 7\n" in text
        assert "# TYPE repro_latency_seconds summary\n" in text
        for q in ("0.5", "0.9", "0.95", "0.99"):
            assert f'repro_latency_seconds{{kind="knn",quantile="{q}"}}' in text
        assert 'repro_latency_seconds_sum{kind="knn"} 0.007' in text
        assert 'repro_latency_seconds_count{kind="knn"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_odd_total", "", ("detail",)).labels(
            'a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert 'detail="a\\"b\\\\c\\nd"' in text

    def test_set_from_has_snapshot_semantics(self):
        registry = MetricsRegistry()
        hist = LatencyHistogram()
        hist.observe(0.001)
        metric = registry.histogram("repro_lat_seconds").labels()
        metric.set_from(hist)
        hist.observe(10.0)  # keeps accumulating elsewhere
        assert metric.hist.count == 1
        metric.set_from(hist)
        assert metric.hist.count == 2

    def test_dump_writes_the_rendering(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").labels().inc()
        path = tmp_path / "out.prom"
        registry.dump(path)
        assert path.read_text() == registry.render_prometheus()


class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_s=0.010)
        assert log.note("window", 0.005) is False
        assert log.note("window", 0.010) is True
        assert log.total == 1
        assert len(log) == 1

    def test_ring_is_bounded_but_total_is_not(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=4)
        for i in range(10):
            log.note("knn", float(i))
        assert len(log) == 4
        assert log.total == 10
        # Newest records win.
        assert [r.latency_s for r in log.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_detail_is_truncated(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.note("window", 1.0, detail="x" * 1000)
        assert len(log.records()[0].detail) == 200

    def test_render_mentions_worst_and_trace_id(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.note("window", 0.020, trace_id=7, io={"reads": 3})
        log.note("knn", 0.500, queue_s=0.4, engine_s=0.1, batch_size=8)
        text = log.render()
        assert "2 over 0.0 ms" in text
        assert text.index("knn") < text.index("window")  # worst-first
        assert "trace=#7" in text

    def test_empty_render_and_invalid_ctor(self):
        assert "empty" in SlowQueryLog(threshold_s=0.5).render()
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=0.0, capacity=0)


class TestMetricsServer:
    def test_serves_live_registry_over_http(self):
        import urllib.request

        from repro.obs import MetricsServer

        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Requests served."
        ).labels()
        requests.inc(3)
        with MetricsServer(registry, port=0) as server:
            assert server.port != 0
            assert server.url.endswith("/metrics")
            body = urllib.request.urlopen(server.url).read().decode()
            assert "repro_requests_total 3" in body
            # A scrape renders at scrape time: later increments show up.
            requests.inc(4)
            body = urllib.request.urlopen(server.url).read().decode()
            assert "repro_requests_total 7" in body
            with urllib.request.urlopen(server.url) as response:
                assert (
                    response.headers["Content-Type"]
                    == "text/plain; version=0.0.4"
                )

    def test_unknown_path_is_404(self):
        import urllib.error
        import urllib.request

        from repro.obs import MetricsServer

        with MetricsServer(MetricsRegistry(), port=0) as server:
            root = f"http://127.0.0.1:{server.port}/"
            assert b"# " in urllib.request.urlopen(root).read() or True
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope"
                )

    def test_close_is_idempotent_and_releases_port(self):
        from repro.obs import MetricsServer

        server = MetricsServer(MetricsRegistry(), port=0)
        server.start()
        server.start()  # idempotent
        port = server.port
        server.close()
        server.close()
        # The port is released: a fresh server can bind it again.
        rebound = MetricsServer(MetricsRegistry(), port=port)
        rebound.start()
        assert rebound.port == port
        rebound.close()
