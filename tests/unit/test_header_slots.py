"""Header-slot arithmetic of the shadow-paged file store.

The atomic-commit story of ``docs/durability.md`` rests on a handful of
byte-level rules in ``FileBlockStore``: two alternating 2 KB header
slots, epoch parity choosing the slot, the highest checksummed epoch
choosing the state, CRC32 rejecting torn or bit-flipped slots, and the
pre-shadow ``FBS1`` layout still opening (then upgrading on first
commit).  These tests pin each rule down, including against a
hand-built legacy golden file.
"""

import struct
import zlib

import pytest

from repro.iomodel.blockstore import FreedBlockError
from repro.storage import (
    FaultInjector,
    FileBlockStore,
    SimulatedCrash,
    StorageError,
)
from repro.storage.filestore import HEADER_REGION, HEADER_SLOT

_NIL = 2**64 - 1


def _commit_n(path, n, block_size=64):
    """Create a store and run ``n`` commits, each writing one block."""
    store = FileBlockStore.create(path, block_size=block_size, meta=b"m0")
    ids = []
    for i in range(n):
        ids.append(store.allocate(bytes([65 + i]) * block_size))
        store.flush()
    store.close()
    return ids


# ----------------------------------------------------------------------
# Epoch / slot selection
# ----------------------------------------------------------------------


def test_epoch_parity_selects_alternating_slots(tmp_path):
    path = tmp_path / "s.bin"
    _commit_n(path, 3)  # epochs 0 (create), 1, 2, 3
    raw = path.read_bytes()
    # Epoch 3 committed last (odd -> slot 1); slot 0 holds epoch 2.
    (epoch0,) = struct.unpack_from("<Q", raw, 10)
    (epoch1,) = struct.unpack_from("<Q", raw, HEADER_SLOT + 10)
    assert (epoch0, epoch1) == (2, 3)
    with FileBlockStore.open(path) as store:
        assert store.commit_epoch == 3
        assert store.recovery.header_slot == 1


def test_highest_valid_epoch_wins(tmp_path):
    path = tmp_path / "s.bin"
    ids = _commit_n(path, 2)
    with FileBlockStore.open(path) as store:
        assert store.commit_epoch == 2
        assert store.recovery.header_slot == 0
        assert store.read(ids[1])[:1] == b"B"


def test_corrupt_newest_slot_falls_back_one_epoch(tmp_path):
    path = tmp_path / "s.bin"
    ids = _commit_n(path, 3)  # newest epoch 3 lives in slot 1
    raw = bytearray(path.read_bytes())
    raw[HEADER_SLOT + 10] ^= 0xFF  # bend the epoch, CRC now wrong
    path.write_bytes(bytes(raw))
    with FileBlockStore.open(path) as store:
        assert store.commit_epoch == 2
        assert store.recovery.header_slot == 0
        assert store.recovery.discarded_epoch is None
        # Epoch 2's state: two blocks live, the third never allocated.
        assert len(store) == 2
        assert store.read(ids[0])[:1] == b"A"
        assert store.read(ids[1])[:1] == b"B"


def test_epoch_in_wrong_slot_is_rejected(tmp_path):
    path = tmp_path / "s.bin"
    _commit_n(path, 2)
    raw = bytearray(path.read_bytes())
    # Copy slot 0 (epoch 2) into slot 1 verbatim: the CRC is fine, but
    # an even epoch has no business in the odd slot.
    raw[HEADER_SLOT:HEADER_REGION] = raw[0:HEADER_SLOT]
    path.write_bytes(bytes(raw))
    with FileBlockStore.open(path) as store:  # slot 0 still serves
        assert store.commit_epoch == 2
        assert store.recovery.header_slot == 0


def test_both_slots_invalid_reports_both_reasons(tmp_path):
    path = tmp_path / "s.bin"
    _commit_n(path, 2)
    raw = bytearray(path.read_bytes())
    raw[HEADER_SLOT - 4 : HEADER_SLOT] = b"\x00\x00\x00\x00"
    raw[HEADER_REGION - 4 : HEADER_REGION] = b"\x00\x00\x00\x00"
    path.write_bytes(bytes(raw))
    with pytest.raises(StorageError, match="slot 0.*slot 1"):
        FileBlockStore.open(path)


def test_at_epoch_opens_the_previous_commit(tmp_path):
    path = tmp_path / "s.bin"
    ids = _commit_n(path, 2)
    with FileBlockStore.open(path, at_epoch=1, readonly=True) as store:
        assert store.commit_epoch == 1
        assert len(store) == 1
        assert store.read(ids[0])[:1] == b"A"
    with pytest.raises(StorageError, match="no committed epoch 7"):
        FileBlockStore.open(path, at_epoch=7)


# ----------------------------------------------------------------------
# Checksum vs torn / corrupted header writes
# ----------------------------------------------------------------------


def test_torn_header_write_rolls_back(tmp_path):
    """A crash mid header-slot write must not publish the new epoch."""
    path = tmp_path / "s.bin"
    golden = FaultInjector()
    store = FileBlockStore.create(
        path, block_size=64, meta=b"m", injector=golden
    )
    a = store.allocate(b"a" * 64)
    store.flush()
    store.allocate(b"b" * 64)
    store.flush()
    store.close()
    commits = golden.commit_points("store")
    assert len(commits) == 2
    # Replay, tearing exactly the second commit's header-slot write.
    path.unlink()
    injector = FaultInjector(crash_after=commits[1], mode="torn", seed=7)
    store = FileBlockStore.create(
        path, block_size=64, meta=b"m", injector=injector
    )
    a = store.allocate(b"a" * 64)
    store.flush()
    store.allocate(b"b" * 64)
    with pytest.raises(SimulatedCrash):
        store.flush()
    store.close()
    with FileBlockStore.open(path) as survivor:
        assert survivor.commit_epoch == 1  # the torn epoch-2 slot is junk
        assert len(survivor) == 1
        assert survivor.read(a) == b"a" * 64
        assert survivor.recovery.rolled_back_blocks > 0


def test_bitflipped_header_is_rejected_by_crc(tmp_path):
    """One flipped bit in flight: the checksum must disqualify the slot."""
    path = tmp_path / "s.bin"
    golden = FaultInjector()
    store = FileBlockStore.create(
        path, block_size=64, meta=b"m", injector=golden
    )
    a = store.allocate(b"a" * 64)
    store.flush()
    store.allocate(b"b" * 64)
    store.flush()
    store.close()
    commits = golden.commit_points("store")
    path.unlink()
    injector = FaultInjector(bitflip_at=commits[1], seed=3)
    store = FileBlockStore.create(
        path, block_size=64, meta=b"m", injector=injector
    )
    a = store.allocate(b"a" * 64)
    store.flush()
    store.allocate(b"b" * 64)
    store.flush()  # epoch 2's slot goes to disk with one bad bit
    store.close()
    with FileBlockStore.open(path) as survivor:
        assert survivor.commit_epoch == 1
        assert survivor.read(a) == b"a" * 64


# ----------------------------------------------------------------------
# Legacy (FBS1) golden file
# ----------------------------------------------------------------------

_LEGACY_BLOCK = 32


def _legacy_golden_file(tmp_path):
    """Hand-pack a byte-exact FBS1 file: 3 blocks, block 1 freed.

    Layout per the v1 spec in ``docs/storage-format.md``: one 38-byte
    header (magic, version, block size, block count, freelist head,
    live count, metadata length) at offset 0, metadata right after,
    blocks from offset 4096; a freed block's first 8 bytes hold the
    next freed id (intrusive freelist).
    """
    meta = b"golden-meta"
    header = struct.pack(
        "<4sHIQQQI", b"FBS1", 1, _LEGACY_BLOCK, 3, 1, 2, len(meta)
    )
    region = (header + meta).ljust(HEADER_REGION, b"\x00")
    blocks = (
        b"A" * _LEGACY_BLOCK
        + struct.pack("<Q", _NIL).ljust(_LEGACY_BLOCK, b"\x00")
        + b"C" * _LEGACY_BLOCK
    )
    path = tmp_path / "legacy.bin"
    path.write_bytes(region + blocks)
    return path, meta


def test_legacy_golden_file_opens(tmp_path):
    path, meta = _legacy_golden_file(tmp_path)
    with FileBlockStore.open(path, readonly=True) as store:
        assert store.metadata == meta
        assert len(store) == 2
        assert store.read(0) == b"A" * _LEGACY_BLOCK
        assert store.read(2) == b"C" * _LEGACY_BLOCK
        with pytest.raises(FreedBlockError, match="read-after-free"):
            store.read(1)
        assert store.recovery.legacy
        assert store.recovery.header_slot == -1
        assert store.recovery.epoch == 0


def test_legacy_first_commit_upgrades_and_preserves_data(tmp_path):
    path, meta = _legacy_golden_file(tmp_path)
    with FileBlockStore.open(path) as store:
        store.write(0, b"B" * _LEGACY_BLOCK)
        store.flush()  # first v2 commit: epoch 1 -> slot 1
        assert store.commit_epoch == 1
    raw = path.read_bytes()
    # Epoch 1 is odd, so the FBS2 slot lives at offset 2048 and the
    # original FBS1 bytes still open the file for old readers' sniff --
    # but the FBS2 slot must win.
    assert raw[:4] == b"FBS1"
    assert raw[HEADER_SLOT : HEADER_SLOT + 4] == b"FBS2"
    crc = zlib.crc32(raw[HEADER_SLOT : HEADER_REGION - 4])
    assert struct.unpack_from("<I", raw, HEADER_REGION - 4)[0] == crc
    with FileBlockStore.open(path) as store:
        assert not store.recovery.legacy
        assert store.commit_epoch == 1
        assert store.metadata == meta
        assert store.read(0) == b"B" * _LEGACY_BLOCK
        assert store.read(2) == b"C" * _LEGACY_BLOCK
        # The legacy freelist's logical id is reusable.
        assert store.allocate(b"D" * _LEGACY_BLOCK) == 1


def test_legacy_crash_before_first_commit_keeps_legacy_file(tmp_path):
    """Until the first v2 commit lands, the FBS1 state must survive —
    including the intrusive freelist bytes inside freed blocks."""
    path, _ = _legacy_golden_file(tmp_path)
    injector = FaultInjector(crash_after=1, mode="clean")
    store = FileBlockStore.open(path, injector=injector)
    with pytest.raises(SimulatedCrash):
        # The write itself is the first physical write: it completes
        # (shadowed to a fresh slot), then the process dies before any
        # commit.
        store.write(0, b"B" * _LEGACY_BLOCK)
        store.flush()
    store.close()
    with FileBlockStore.open(path, readonly=True) as survivor:
        assert survivor.recovery.legacy
        assert survivor.read(0) == b"A" * _LEGACY_BLOCK
        assert survivor.read(2) == b"C" * _LEGACY_BLOCK
