"""Unit tests for Guttman's node-splitting heuristics."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.rtree.split import linear_split, quadratic_split

from tests.conftest import random_rects


def entries_of(data):
    return [(rect, value) for rect, value in data]


SPLITTERS = [quadratic_split, linear_split]


@pytest.mark.parametrize("splitter", SPLITTERS)
class TestCommonSplitContract:
    def test_partition_is_exact(self, splitter):
        entries = entries_of(random_rects(20, seed=1))
        a, b = splitter(entries, min_fill=4)
        assert sorted(p for _, p in a + b) == sorted(p for _, p in entries)

    def test_min_fill_respected(self, splitter):
        for seed in range(5):
            entries = entries_of(random_rects(15, seed=seed))
            a, b = splitter(entries, min_fill=5)
            assert len(a) >= 5 and len(b) >= 5

    def test_two_entries(self, splitter):
        entries = [
            (Rect((0, 0), (1, 1)), 0),
            (Rect((5, 5), (6, 6)), 1),
        ]
        a, b = splitter(entries, min_fill=1)
        assert len(a) == 1 and len(b) == 1

    def test_single_entry_raises(self, splitter):
        with pytest.raises(ValueError):
            splitter([(Rect((0, 0), (1, 1)), 0)], min_fill=1)

    def test_infeasible_min_fill_raises(self, splitter):
        entries = entries_of(random_rects(4, seed=0))
        with pytest.raises(ValueError):
            splitter(entries, min_fill=3)

    def test_identical_rectangles(self, splitter):
        entries = [(Rect((0, 0), (1, 1)), i) for i in range(10)]
        a, b = splitter(entries, min_fill=3)
        assert len(a) + len(b) == 10
        assert len(a) >= 3 and len(b) >= 3

    def test_separates_two_obvious_clusters(self, splitter):
        cluster_a = [(Rect((0.0, 0.0), (0.1, 0.1)).translated((i * 0.01, 0)), i) for i in range(5)]
        cluster_b = [
            (Rect((10.0, 10.0), (10.1, 10.1)).translated((i * 0.01, 0)), 100 + i)
            for i in range(5)
        ]
        rng = random.Random(0)
        entries = cluster_a + cluster_b
        rng.shuffle(entries)
        a, b = splitter(entries, min_fill=2)
        groups = [{p for _, p in a}, {p for _, p in b}]
        assert {0, 1, 2, 3, 4} in groups and {100, 101, 102, 103, 104} in groups

    def test_works_in_3d(self, splitter):
        entries = entries_of(random_rects(12, seed=2, dim=3))
        a, b = splitter(entries, min_fill=3)
        assert len(a) + len(b) == 12


class TestQuadraticSpecifics:
    def test_seeds_are_most_wasteful_pair(self):
        # Two far-apart rects plus a cluster: the far pair must seed
        # opposite groups.
        entries = [
            (Rect((0, 0), (1, 1)), "far_a"),
            (Rect((100, 100), (101, 101)), "far_b"),
            (Rect((50, 50), (51, 51)), 1),
            (Rect((50, 51), (51, 52)), 2),
        ]
        a, b = quadratic_split(entries, min_fill=1)
        pointers_a = {p for _, p in a}
        pointers_b = {p for _, p in b}
        assert ("far_a" in pointers_a) != ("far_a" in pointers_b)
        assert ("far_b" in pointers_a) != ("far_b" in pointers_b)
        assert not ({"far_a", "far_b"} <= pointers_a)
        assert not ({"far_a", "far_b"} <= pointers_b)


class TestLinearSpecifics:
    def test_extreme_separation_seeds(self):
        entries = [
            (Rect((0.0, 0.0), (0.1, 1.0)), "left"),
            (Rect((9.9, 0.0), (10.0, 1.0)), "right"),
            (Rect((5.0, 0.0), (5.1, 1.0)), "mid1"),
            (Rect((5.2, 0.0), (5.3, 1.0)), "mid2"),
        ]
        a, b = linear_split(entries, min_fill=1)
        sides = [{p for _, p in a}, {p for _, p in b}]
        assert not any({"left", "right"} <= side for side in sides)
