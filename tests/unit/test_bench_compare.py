"""Unit tests for tools/bench_compare.py (the CI regression gate)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
# Register before exec: @dataclass resolves annotations through
# sys.modules[cls.__module__].
sys.modules["bench_compare"] = bench_compare
_SPEC.loader.exec_module(bench_compare)


def table_json(headers, rows, title="t") -> str:
    return json.dumps(
        {
            "schema": "repro-table/1",
            "title": title,
            "headers": headers,
            "rows": rows,
            "notes": [],
        }
    )


@pytest.fixture
def trees(tmp_path):
    base = tmp_path / "base"
    cur = tmp_path / "cur"
    base.mkdir()
    cur.mkdir()
    return base, cur


class TestClassify:
    def test_directions(self):
        classify = bench_compare.classify
        assert classify("req_per_s").direction == +1
        assert classify("achieved_rps").direction == +1
        assert classify("p99_ms").direction == -1
        assert classify("leaf_ios").direction == -1
        assert classify("pack_s").direction == -1
        assert classify("hit_ratio").direction == +1
        assert classify("vs_off").direction == +1
        assert classify("n").direction == 0
        assert classify("rate_rps").direction == 0  # input parameter
        assert classify("score").direction == -1  # degradation score
        assert classify("io_vs_fresh").direction == -1

    def test_timing_vs_deterministic(self):
        classify = bench_compare.classify
        assert classify("req_per_s").timing
        assert classify("p50_ms").timing
        assert not classify("leaf_ios").timing
        assert not classify("hits").timing
        assert not classify("score").timing
        assert not classify("io_vs_fresh").timing

    def test_unknown_is_reported_not_gated(self):
        column = bench_compare.classify("flux_capacitance")
        assert column.unknown
        assert column.direction == 0


class TestCompareAndGate:
    def test_identical_trees_pass(self, trees, capsys):
        base, cur = trees
        doc = table_json(
            ["batch", "req_per_s", "leaf_ios"], [[0, 100.0, 50], [1, 110.0, 48]]
        )
        (base / "a.json").write_text(doc)
        (cur / "a.json").write_text(doc)
        assert bench_compare.main([str(base), str(cur)]) == 0
        assert "no gated regressions" in capsys.readouterr().out

    def test_detects_30pct_throughput_regression(self, trees, capsys):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 1000.0]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 700.0]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "req_per_s" in out

    def test_within_tolerance_passes(self, trees):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 1000.0]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 800.0]])
        )
        # -20% is inside the default 25% band...
        assert bench_compare.main([str(base), str(cur)]) == 0
        # ...but outside a tighter one.
        assert (
            bench_compare.main(
                [str(base), str(cur), "--tolerance", "0.1"]
            )
            == 1
        )

    def test_improvement_is_not_a_regression(self, trees):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 100]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 40]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 0

    def test_lower_better_regression(self, trees):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 100]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 150]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 1

    def test_ratio_only_demotes_timing_columns(self, trees, capsys):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "req_per_s", "leaf_ios"], [[0, 1000.0, 50]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "req_per_s", "leaf_ios"], [[0, 500.0, 50]])
        )
        assert (
            bench_compare.main([str(base), str(cur), "--ratio-only"]) == 0
        )
        assert "report-only" in capsys.readouterr().out
        # The same deterministic regression still gates in ratio-only.
        (cur / "a.json").write_text(
            table_json(["batch", "req_per_s", "leaf_ios"], [[0, 1000.0, 90]])
        )
        assert (
            bench_compare.main([str(base), str(cur), "--ratio-only"]) == 1
        )

    def test_rows_matched_by_label_not_position(self, trees):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(
                ["variant", "leaf_ios"], [["PR", 100], ["H", 200]]
            )
        )
        # Current run reordered rows and added one; still no regression.
        (cur / "a.json").write_text(
            table_json(
                ["variant", "leaf_ios"],
                [["H", 200], ["STR", 999], ["PR", 100]],
            )
        )
        assert bench_compare.main([str(base), str(cur)]) == 0

    def test_columns_matched_by_header(self, trees):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 100]])
        )
        # Current table gained a column in front; leaf_ios still found.
        (cur / "a.json").write_text(
            table_json(["batch", "extra", "leaf_ios"], [[0, 7, 300]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 1

    def test_missing_current_file_is_reported_not_fatal(self, trees, capsys):
        base, cur = trees
        (base / "gone.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 1]])
        )
        (base / "kept.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 1]])
        )
        (cur / "kept.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 1]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 0
        assert "missing from current: gone.json" in capsys.readouterr().out

    def test_markdown_report(self, trees, tmp_path):
        base, cur = trees
        (base / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 1000.0]])
        )
        (cur / "a.json").write_text(
            table_json(["batch", "req_per_s"], [[0, 600.0]])
        )
        report = tmp_path / "delta.md"
        assert (
            bench_compare.main(
                [str(base), str(cur), "--report", str(report)]
            )
            == 1
        )
        text = report.read_text()
        assert "## Regressions (1)" in text
        assert "req_per_s" in text
        assert "-40.0%" in text

    def test_bad_directory_exits_2(self, tmp_path):
        assert (
            bench_compare.main(
                [str(tmp_path / "nope"), str(tmp_path / "nope2")]
            )
            == 2
        )

    def test_non_table_json_skipped(self, trees, capsys):
        base, cur = trees
        (base / "a.json").write_text('{"something": "else"}')
        (base / "b.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 1]])
        )
        (cur / "b.json").write_text(
            table_json(["batch", "leaf_ios"], [[0, 1]])
        )
        assert bench_compare.main([str(base), str(cur)]) == 0
        assert "not repro-table/1" in capsys.readouterr().err
