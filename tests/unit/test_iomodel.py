"""Unit tests for counters, block store, cache and codec."""

import math

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore, FreedBlockError
from repro.iomodel.cache import LRUCache
from repro.iomodel.store import BlockStoreProtocol
from repro.iomodel.codec import NodeCodec, entry_size, fanout_for_block
from repro.iomodel.counters import IOCounters, IOSnapshot, TimeModel


class TestCounters:
    def test_initial_state(self):
        c = IOCounters()
        assert c.reads == c.writes == 0
        assert c.total == 0

    def test_read_write_counting(self):
        c = IOCounters()
        c.record_read(0)
        c.record_write(5)
        c.record_read(6)
        assert c.reads == 2 and c.writes == 1 and c.total == 3

    def test_sequential_detection(self):
        c = IOCounters()
        c.record_read(10)  # first access: no predecessor, random
        c.record_read(11)  # sequential
        c.record_read(12)  # sequential
        c.record_read(50)  # seek
        c.record_read(51)  # sequential again
        assert c.seq_reads == 3
        snap = c.snapshot()
        assert snap.rand_reads == 2

    def test_sequential_write_after_read(self):
        c = IOCounters()
        c.record_read(7)
        c.record_write(8)
        assert c.seq_writes == 1

    def test_snapshot_subtraction(self):
        c = IOCounters()
        c.record_read(0)
        before = c.snapshot()
        c.record_read(1)
        c.record_write(2)
        delta = c.snapshot() - before
        assert delta.reads == 1 and delta.writes == 1
        assert delta.sequential == 2

    def test_snapshot_addition(self):
        a = IOSnapshot(reads=1, writes=2, seq_reads=1, seq_writes=0)
        b = IOSnapshot(reads=3, writes=4, seq_reads=2, seq_writes=1)
        s = a + b
        assert (s.reads, s.writes, s.seq_reads, s.seq_writes) == (4, 6, 3, 1)

    def test_reset(self):
        c = IOCounters()
        c.record_read(0)
        c.reset()
        assert c.total == 0
        c.record_read(1)  # after reset, no predecessor: random
        assert c.seq_reads == 0

    def test_time_model(self):
        tm = TimeModel(seq_seconds=0.001, rand_seconds=0.1)
        snap = IOSnapshot(reads=10, writes=0, seq_reads=6, seq_writes=0)
        assert tm.seconds(snap) == pytest.approx(6 * 0.001 + 4 * 0.1)


class TestBlockStore:
    def test_allocate_read_roundtrip(self):
        store = BlockStore()
        bid = store.allocate({"x": 1})
        assert store.read(bid) == {"x": 1}

    def test_allocation_is_consecutive(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_allocate_counts_write(self):
        store = BlockStore()
        store.allocate("a")
        assert store.counters.writes == 1

    def test_read_counts(self):
        store = BlockStore()
        bid = store.allocate("a")
        store.read(bid)
        store.read(bid)
        assert store.counters.reads == 2

    def test_peek_is_free(self):
        store = BlockStore()
        bid = store.allocate("a")
        before = store.counters.total
        assert store.peek(bid) == "a"
        assert store.counters.total == before

    def test_write_in_place(self):
        store = BlockStore()
        bid = store.allocate("a")
        store.write(bid, "b")
        assert store.peek(bid) == "b"

    def test_free_then_read_raises(self):
        store = BlockStore()
        bid = store.allocate("a")
        store.free(bid)
        with pytest.raises(FreedBlockError, match="read-after-free"):
            store.read(bid)

    def test_free_then_write_and_peek_raise(self):
        store = BlockStore()
        bid = store.allocate("a")
        store.free(bid)
        with pytest.raises(FreedBlockError):
            store.write(bid, "b")
        with pytest.raises(FreedBlockError):
            store.peek(bid)

    def test_free_unallocated_raises(self):
        store = BlockStore()
        with pytest.raises(KeyError):
            store.free(99)

    def test_double_free_raises(self):
        store = BlockStore()
        bid = store.allocate("a")
        store.free(bid)
        with pytest.raises(FreedBlockError, match="double free"):
            store.free(bid)

    def test_freed_error_is_a_key_error(self):
        # Callers catching the old generic error keep working.
        assert issubclass(FreedBlockError, KeyError)

    def test_read_never_allocated_is_plain_key_error(self):
        store = BlockStore()
        with pytest.raises(KeyError) as excinfo:
            store.read(7)
        assert not isinstance(excinfo.value, FreedBlockError)

    def test_satisfies_store_protocol(self):
        assert isinstance(BlockStore(), BlockStoreProtocol)

    def test_len_and_contains(self):
        store = BlockStore()
        a = store.allocate(1)
        b = store.allocate(2)
        store.free(a)
        assert len(store) == 1
        assert b in store and a not in store

    def test_freed_addresses_not_reused(self):
        store = BlockStore()
        a = store.allocate(1)
        store.free(a)
        b = store.allocate(2)
        assert b != a
        assert store.allocated_ever == 2

    def test_bytes_used(self):
        store = BlockStore(block_size=4096)
        store.allocate(1)
        store.allocate(2)
        assert store.bytes_used() == 8192

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockStore(block_size=0)


class TestLRUCache:
    def test_hit_costs_no_io(self):
        store = BlockStore()
        bid = store.allocate("a")
        cache = LRUCache(store)
        cache.get(bid)
        reads_after_miss = store.counters.reads
        cache.get(bid)
        assert store.counters.reads == reads_after_miss
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order_is_lru(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(3)]
        cache = LRUCache(store, capacity=2)
        cache.get(ids[0])
        cache.get(ids[1])
        cache.get(ids[0])  # refresh 0
        cache.get(ids[2])  # evicts 1
        assert ids[1] not in cache and ids[0] in cache

    def test_zero_capacity_disables_caching(self):
        store = BlockStore()
        bid = store.allocate("a")
        cache = LRUCache(store, capacity=0)
        cache.get(bid)
        cache.get(bid)
        assert cache.hits == 0 and store.counters.reads == 2

    def test_unbounded_by_default(self):
        store = BlockStore()
        ids = [store.allocate(i) for i in range(100)]
        cache = LRUCache(store)
        for bid in ids:
            cache.get(bid)
        assert len(cache) == 100

    def test_invalidate(self):
        store = BlockStore()
        bid = store.allocate("a")
        cache = LRUCache(store)
        cache.get(bid)
        store.write(bid, "b")
        cache.invalidate(bid)
        assert cache.get(bid) == "b"

    def test_hit_rate(self):
        store = BlockStore()
        bid = store.allocate("a")
        cache = LRUCache(store)
        assert cache.hit_rate == 0.0
        cache.get(bid)
        cache.get(bid)
        assert cache.hit_rate == 0.5

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LRUCache(BlockStore(), capacity=-1)


class TestCodec:
    def test_paper_fanout(self):
        # Section 3.1: 4 KB blocks, 36-byte entries -> fan-out 113.
        assert entry_size(2) == 36
        assert fanout_for_block(4096, 2) == 113

    def test_fanout_other_dims(self):
        assert entry_size(3) == 52
        assert fanout_for_block(4096, 3) == 78
        assert entry_size(1) == 20
        assert fanout_for_block(4096, 1) == 204

    def test_tiny_block_raises(self):
        with pytest.raises(ValueError):
            fanout_for_block(40, 2)

    def test_roundtrip_leaf(self):
        codec = NodeCodec(dim=2)
        entries = [
            (Rect((0.0, 1.0), (2.0, 3.0)), 7),
            (Rect((-1.5, 0.25), (0.0, 0.5)), 123456),
        ]
        block = codec.encode(True, entries)
        assert len(block) == 4096
        assert codec.decode(block) == (True, entries)

    def test_roundtrip_internal(self):
        codec = NodeCodec(dim=2)
        entries = [(Rect((0.0, 0.0), (1.0, 1.0)), 42)]
        assert codec.decode(codec.encode(False, entries)) == (False, entries)

    def test_roundtrip_empty(self):
        codec = NodeCodec(dim=2)
        assert codec.decode(codec.encode(True, [])) == (True, [])

    def test_roundtrip_full_block(self):
        codec = NodeCodec(dim=2)
        entries = [
            (Rect((float(i), 0.0), (float(i + 1), 1.0)), i)
            for i in range(codec.fanout)
        ]
        assert codec.decode(codec.encode(False, entries)) == (False, entries)

    def test_overflow_raises(self):
        codec = NodeCodec(dim=2)
        entries = [
            (Rect((float(i), 0.0), (float(i + 1), 1.0)), i)
            for i in range(codec.fanout + 1)
        ]
        with pytest.raises(ValueError):
            codec.encode(True, entries)

    def test_wrong_dim_raises(self):
        codec = NodeCodec(dim=2)
        with pytest.raises(ValueError):
            codec.encode(True, [(Rect((0.0,), (1.0,)), 0)])

    def test_wrong_block_length_raises(self):
        codec = NodeCodec(dim=2)
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * 100)

    def test_3d_roundtrip(self):
        codec = NodeCodec(dim=3)
        entries = [(Rect((0.0, 1.0, 2.0), (3.0, 4.0, 5.0)), 9)]
        assert codec.decode(codec.encode(True, entries)) == (True, entries)
