"""Unit tests for the dataset generators (paper Section 3.2)."""

import math

import pytest

from repro.datasets.synthetic import (
    aspect_dataset,
    cluster_dataset,
    size_dataset,
    skewed_dataset,
    uniform_points,
    uniform_rects,
)
from repro.datasets.tiger import (
    EASTERN,
    WESTERN,
    TigerRegion,
    eastern_scaling_series,
    tiger_dataset,
)
from repro.datasets.worstcase import bit_reversal, worstcase_dataset, worstcase_query
from repro.geometry.rect import Rect, mbr_of


class TestSizeDataset:
    def test_count_and_determinism(self):
        a = size_dataset(100, 0.05, seed=1)
        b = size_dataset(100, 0.05, seed=1)
        assert len(a) == 100 and a == b

    def test_inside_unit_square(self):
        for rect, _ in size_dataset(300, 0.2, seed=2):
            assert rect.lo[0] >= 0 and rect.lo[1] >= 0
            assert rect.hi[0] <= 1 and rect.hi[1] <= 1

    def test_side_bound(self):
        for rect, _ in size_dataset(300, 0.05, seed=3):
            assert rect.side(0) <= 0.05 and rect.side(1) <= 0.05

    def test_larger_max_side_gives_larger_mean_area(self):
        small = size_dataset(500, 0.01, seed=4)
        large = size_dataset(500, 0.2, seed=4)
        mean = lambda ds: sum(r.area() for r, _ in ds) / len(ds)
        assert mean(large) > mean(small) * 10

    def test_invalid_max_side(self):
        with pytest.raises(ValueError):
            size_dataset(10, 0.0)


class TestAspectDataset:
    def test_fixed_area_and_ratio(self):
        for rect, _ in aspect_dataset(200, 100.0, seed=5):
            assert rect.area() == pytest.approx(1e-6, rel=1e-6)
            assert rect.aspect_ratio() == pytest.approx(100.0, rel=1e-6)

    def test_both_orientations_present(self):
        data = aspect_dataset(300, 10.0, seed=6)
        horizontal = sum(1 for r, _ in data if r.side(0) > r.side(1))
        assert 0.3 < horizontal / len(data) < 0.7

    def test_inside_unit_square(self):
        for rect, _ in aspect_dataset(200, 1e4, seed=7):
            assert rect.lo[0] >= 0 and rect.hi[0] <= 1

    def test_infeasible_aspect_raises(self):
        with pytest.raises(ValueError):
            aspect_dataset(10, 1e9, area=1e-2)

    def test_aspect_below_one_raises(self):
        with pytest.raises(ValueError):
            aspect_dataset(10, 0.5)


class TestSkewedDataset:
    def test_points_in_unit_square(self):
        for rect, _ in skewed_dataset(300, 5, seed=8):
            assert rect.is_point()
            assert 0 <= rect.lo[0] <= 1 and 0 <= rect.lo[1] <= 1

    def test_skew_compresses_y(self):
        flat = skewed_dataset(1000, 1, seed=9)
        squeezed = skewed_dataset(1000, 9, seed=9)
        mean_y = lambda ds: sum(r.lo[1] for r, _ in ds) / len(ds)
        assert mean_y(squeezed) < mean_y(flat) / 2

    def test_x_untouched(self):
        c1 = skewed_dataset(100, 1, seed=10)
        c9 = skewed_dataset(100, 9, seed=10)
        assert [r.lo[0] for r, _ in c1] == [r.lo[0] for r, _ in c9]

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            skewed_dataset(10, 0)


class TestClusterDataset:
    def test_count(self):
        data = cluster_dataset(5000, clusters=10, seed=11)
        assert len(data) == 5000

    def test_points_live_in_their_clusters(self):
        clusters = 10
        extent = 1e-5
        data = cluster_dataset(1000, clusters=clusters, cluster_extent=extent, seed=12)
        for rect, _ in data:
            x, y = rect.lo
            centers = [(k + 0.5) / clusters for k in range(clusters)]
            assert any(abs(x - c) <= extent for c in centers)
            assert abs(y - 0.5) <= extent

    def test_default_cluster_count_scales(self):
        data = cluster_dataset(20_000, seed=13)
        xs = sorted({round(r.lo[0], 3) for r, _ in data})
        assert len(xs) >= 10

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            cluster_dataset(100, clusters=0)


class TestUniformHelpers:
    def test_uniform_points(self):
        data = uniform_points(100, seed=14)
        assert len(data) == 100 and all(r.is_point() for r, _ in data)

    def test_uniform_rects(self):
        data = uniform_rects(100, max_side=0.01, seed=15)
        assert all(r.side(0) <= 0.01 + 1e-12 for r, _ in data)


class TestTigerDataset:
    def test_count_and_determinism(self):
        a = tiger_dataset(500, "eastern", seed=16)
        b = tiger_dataset(500, "eastern", seed=16)
        assert len(a) == 500 and a == b

    def test_small_segments(self):
        # "relatively small rectangles (long roads are divided into short
        # segments)"
        data = tiger_dataset(1000, "eastern", seed=17)
        for rect, _ in data:
            assert rect.side(0) <= 0.01 and rect.side(1) <= 0.01

    def test_clustered_but_not_too_badly(self):
        # A sizeable fraction of the map is still covered by segments.
        data = tiger_dataset(5000, "eastern", seed=18)
        occupied = {
            (int(r.center()[0] * 20), int(r.center()[1] * 20)) for r, _ in data
        }
        assert len(occupied) > 100  # spread over >25% of a 20x20 grid

    def test_region_subsets_restrict_x(self):
        data = tiger_dataset(1000, "eastern", regions_used=2, seed=19)
        assert all(r.hi[0] <= 2 / 5 + 1e-9 for r, _ in data)

    def test_western_differs_from_eastern(self):
        east = tiger_dataset(500, "eastern", seed=20)
        west = tiger_dataset(500, "western", seed=20)
        assert east != west

    def test_unknown_region_raises(self):
        with pytest.raises(ValueError):
            tiger_dataset(10, "northern")

    def test_invalid_regions_used(self):
        with pytest.raises(ValueError):
            tiger_dataset(10, regions_used=6)

    def test_custom_region(self):
        region = TigerRegion(
            name="custom",
            urban_centers=3,
            urban_fraction=0.5,
            urban_spread=0.01,
            segment_length=0.001,
        )
        assert len(tiger_dataset(100, region, seed=21)) == 100

    def test_scaling_series_proportions(self):
        series = eastern_scaling_series(1000, seed=22)
        sizes = [n for n, _ in series]
        assert len(series) == 5
        assert sizes == sorted(sizes)
        assert sizes[-1] == 1000
        assert sizes[0] == round(1000 * 2.08 / 16.72)


class TestWorstCase:
    def test_bit_reversal(self):
        assert bit_reversal(0b001, 3) == 0b100
        assert bit_reversal(0b110, 3) == 0b011
        assert bit_reversal(0, 4) == 0
        with pytest.raises(ValueError):
            bit_reversal(8, 3)

    def test_dataset_shape(self):
        data = worstcase_dataset(1024, 16)
        assert len(data) == 1024
        xs = {r.lo[0] for r, _ in data}
        assert len(xs) == 64  # N/B columns
        # every column holds exactly B points
        from collections import Counter

        counts = Counter(r.lo[0] for r, _ in data)
        assert set(counts.values()) == {16}

    def test_rounding_up_to_power_of_two_columns(self):
        data = worstcase_dataset(1000, 16)
        assert len(data) == 1024

    def test_capacity_too_small_raises(self):
        with pytest.raises(ValueError):
            worstcase_dataset(100, 2)

    def test_query_is_empty_but_spans_all_columns(self):
        n, b = 2048, 16
        data = worstcase_dataset(n, b)
        for seed in range(10):
            window = worstcase_query(len(data), b, seed=seed)
            hits = [r for r, _ in data if r.intersects(window)]
            assert hits == []
            # it spans the full x-range
            assert window.lo[0] <= 0.5
            assert window.hi[0] >= len(data) / b - 0.5

    def test_query_intersects_every_column_bbox(self):
        n, b = 1024, 16
        data = worstcase_dataset(n, b)
        window = worstcase_query(n, b, seed=3)
        columns: dict[float, list] = {}
        for rect, _ in data:
            columns.setdefault(rect.lo[0], []).append(rect)
        for column_rects in columns.values():
            assert mbr_of(column_rects).intersects(window)
