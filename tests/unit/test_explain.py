"""Unit tests for per-query EXPLAIN plan capture."""

import itertools

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.obs.slowlog import SlowQueryLog
from repro.prtree.prtree import build_prtree
from repro.queries.explain import JoinPlan, QueryPlan, install, uninstall
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.server import (
    CountRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)
from repro.storage import PagedTree, open_index, pack_tree, shard_pack

from tests.conftest import random_rects

WINDOW = Rect((0.2, 0.2), (0.6, 0.6))


@pytest.fixture
def paged(tmp_path):
    data = random_rects(800, seed=31)
    tree = build_prtree(BlockStore(), data, 16)
    path = tmp_path / "explain.pack"
    pack_tree(tree, path, block_size=1024)
    with PagedTree.open(path, values=dict(tree.objects)) as handle:
        yield handle


def check_plan_shape(plan: QueryPlan, stats) -> None:
    """Invariants every captured single-tree plan satisfies."""
    assert plan.leaf_reads == stats.leaf_reads
    assert plan.internal_reads == stats.internal_reads
    assert plan.internal_visits == stats.internal_visits
    assert [l.level for l in plan.levels] == sorted(
        l.level for l in plan.levels
    )
    assert plan.levels[0].level == 0 and plan.levels[0].nodes == 1
    assert plan.levels[-1].leaf
    # Leaf-level node visits are exactly the paper's counted leaf I/Os.
    assert sum(l.nodes for l in plan.levels if l.leaf) == stats.leaf_reads
    assert plan.nodes_visited == sum(l.nodes for l in plan.levels)
    for level in plan.levels:
        assert 0 <= level.matched <= level.entries
        assert level.pruned == level.entries - level.matched
    assert plan.pruning_efficiency >= 0.0


class TestWindowPlan:
    def test_plan_matches_stats(self, paged):
        engine = QueryEngine(paged)
        recorder = install(engine)
        rows, stats = engine.query(WINDOW)
        plan = uninstall(engine, recorder, "window", stats)
        assert isinstance(plan, QueryPlan)
        assert plan.kind == "window"
        assert plan.height == paged.height and plan.fanout == paged.fanout
        check_plan_shape(plan, stats)
        assert plan.reported == stats.reported == len(rows)
        leaf = plan.levels[-1]
        assert leaf.matched == len(rows)

    def test_uninstall_disarms(self, paged):
        engine = QueryEngine(paged)
        recorder = install(engine)
        _, stats = engine.query(WINDOW)
        uninstall(engine, recorder, "window", stats)
        assert engine._recorder is None
        # The next query runs clean and identically.
        rows_again, _ = engine.query(WINDOW)
        rows_recorded, _ = QueryEngine(paged).query(WINDOW)
        assert sorted(v for _, v in rows_again) == sorted(
            v for _, v in rows_recorded
        )

    def test_results_identical_under_recording(self, paged):
        plain, _ = QueryEngine(paged).query(WINDOW)
        engine = QueryEngine(paged)
        recorder = install(engine)
        recorded, stats = engine.query(WINDOW)
        uninstall(engine, recorder, "window", stats)
        assert sorted(v for _, v in recorded) == sorted(
            v for _, v in plain
        )

    def test_lower_bound_and_efficiency(self, paged):
        engine = QueryEngine(paged)
        recorder = install(engine)
        _, stats = engine.query(WINDOW)
        plan = uninstall(engine, recorder, "window", stats)
        assert plan.leaf_lower_bound == -(-plan.reported // plan.fanout)
        if plan.leaf_reads:
            assert plan.pruning_efficiency == (
                plan.leaf_lower_bound / plan.leaf_reads
            )

    def test_summary_and_render(self, paged):
        engine = QueryEngine(paged)
        recorder = install(engine)
        _, stats = engine.query(WINDOW)
        plan = uninstall(engine, recorder, "window", stats)
        summary = plan.summary()
        assert f"leaf_ios={plan.leaf_reads}" in summary
        assert f"nodes={plan.nodes_visited}" in summary
        text = plan.render()
        assert "plan: window" in text
        assert "L0 root" in text
        assert "pruning efficiency" in text

    def test_install_rejects_foreign_engines(self):
        assert install(object()) is None

    def test_uninstall_none_recorder(self, paged):
        engine = QueryEngine(paged)
        _, stats = engine.query(WINDOW)
        assert uninstall(engine, None, "window", stats) is None


class TestOperatorPlans:
    def test_point_plan(self, paged):
        engine = PointQueryEngine(paged)
        recorder = install(engine)
        rows, stats = engine.point_query((0.4, 0.4))
        plan = uninstall(engine, recorder, "point", stats)
        check_plan_shape(plan, stats)
        assert plan.reported == len(rows)

    def test_count_plan(self, paged):
        engine = PointQueryEngine(paged)
        recorder = install(engine)
        count, stats = engine.count(WINDOW)
        plan = uninstall(engine, recorder, "count", stats)
        check_plan_shape(plan, stats)
        assert plan.reported == count
        assert plan.levels[-1].matched == count

    def test_containment_plan(self, paged):
        engine = PointQueryEngine(paged)
        recorder = install(engine)
        rows, stats = engine.containment_query(WINDOW)
        plan = uninstall(engine, recorder, "containment", stats)
        check_plan_shape(plan, stats)
        assert plan.reported == len(rows)

    def test_knn_plan(self, paged):
        engine = KNNEngine(paged)
        recorder = install(engine)
        neighbors = list(itertools.islice(engine.nearest((0.5, 0.5)), 5))
        plan = uninstall(engine, recorder, "knn", engine.totals)
        assert len(neighbors) == 5
        check_plan_shape(plan, engine.totals)
        assert plan.reported == 5


class TestJoinPlan:
    @pytest.fixture
    def trees(self):
        left = build_prtree(
            BlockStore(), random_rects(400, seed=41, max_side=0.1), 8
        )
        right = build_prtree(
            BlockStore(), random_rects(300, seed=42, max_side=0.1), 8
        )
        return left, right

    def test_join_plan_sides(self, trees):
        left, right = trees
        engine = SpatialJoinEngine(left, right)
        recorder = install(engine)
        pairs, stats = engine.join()
        plan = uninstall(engine, recorder, "join", stats)
        assert isinstance(plan, JoinPlan)
        assert plan.pairs == stats.pairs == len(pairs)
        assert plan.left.leaf_reads == stats.left.leaf_reads
        assert plan.right.leaf_reads == stats.right.leaf_reads
        # Both sides' lower bound is ceil(pairs / fanout).
        assert plan.left.reported == plan.right.reported == plan.pairs
        assert plan.nodes_visited == (
            plan.left.nodes_visited + plan.right.nodes_visited
        )
        assert engine._left._recorder is None
        assert engine._right._recorder is None
        assert "left:" in plan.render() and "right:" in plan.render()

    def test_join_pairs_identical_under_recording(self, trees):
        left, right = trees
        plain, _ = SpatialJoinEngine(left, right).join()
        engine = SpatialJoinEngine(left, right)
        recorder = install(engine)
        recorded, stats = engine.join()
        uninstall(engine, recorder, "join", stats)
        key = lambda pair: (pair[0][1], pair[1][1])
        assert sorted(recorded, key=key) == sorted(plain, key=key)

    def test_count_only_join_matches(self, trees):
        left, right = trees
        plain_count, _ = SpatialJoinEngine(left, right).pair_count()
        engine = SpatialJoinEngine(left, right)
        recorder = install(engine)
        count, stats = engine.pair_count()
        plan = uninstall(engine, recorder, "join", stats)
        assert count == plain_count
        assert plan.pairs == count


class TestServerExplain:
    def requests(self):
        return [
            WindowRequest(WINDOW),
            CountRequest(WINDOW),
            PointRequest((0.4, 0.4)),
            KNNRequest((0.5, 0.5), 5),
        ]

    def test_plans_attached(self, paged):
        server = QueryServer(paged, explain=True)
        report = server.submit(self.requests())
        for result in report.results:
            assert result.plan is not None
            assert result.plan.nodes_visited > 0
        # Per-request logical I/O is what the stats already said.
        window_result = report.results[0]
        assert (
            window_result.plan.leaf_reads
            == window_result.stats.leaf_reads
        )

    def test_disabled_by_default(self, paged):
        server = QueryServer(paged)
        report = server.submit(self.requests())
        assert all(result.plan is None for result in report.results)

    def test_explain_disables_window_batching(self, paged):
        batching = QueryServer(paged, batch_windows=True)
        explained = QueryServer(paged, batch_windows=True, explain=True)
        windows = [
            WindowRequest(Rect((x / 10, 0.1), (x / 10 + 0.2, 0.4)))
            for x in range(5)
        ]
        want = batching.submit(list(windows))
        got = explained.submit(list(windows))
        for a, b in zip(got.results, want.results):
            assert a.plan is not None
            assert sorted(v for _, v in a.value) == sorted(
                v for _, v in b.value
            )

    def test_sharded_index_has_no_plan(self, tmp_path):
        data = random_rects(400, seed=51)
        tree = build_prtree(BlockStore(), data, 16)
        manifest = tmp_path / "fam.manifest"
        shard_pack(tree, manifest, shards=3, block_size=1024)
        with open_index(manifest, readonly=True) as family:
            server = QueryServer(family, explain=True)
            report = server.submit(
                [WindowRequest(WINDOW), CountRequest(WINDOW)]
            )
            want = sum(1 for r, _ in data if r.intersects(WINDOW))
            assert report.results[0].plan is None
            assert len(report.results[0].value) == want
            assert report.results[1].plan is None
            assert report.results[1].value == want


class TestSlowLogExplain:
    def test_render_includes_plan_summary(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.note(
            "window",
            0.5,
            detail="WindowRequest(...)",
            explain="nodes=7 leaf_ios=4 pruned=10/64 eff=0.25",
        )
        text = log.render()
        assert "plan[nodes=7 leaf_ios=4 pruned=10/64 eff=0.25]" in text

    def test_render_without_plan_unchanged(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.note("window", 0.5, detail="WindowRequest(...)")
        assert "plan[" not in log.render()

    def test_record_field_default(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.note("point", 0.1)
        assert log.records()[0].explain is None
