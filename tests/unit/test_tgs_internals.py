"""Unit tests for TGS internals shared by the in-memory and external faces."""

import pytest

from repro.bulk.tgs import (
    _binary_split_ext,
    _binary_split_mem,
    _order_key,
    _partition_mem,
    _scan_units_and_keys,
    _sorted_orderings,
    _unit_mbrs,
)
from repro.external.memory import MemoryModel
from repro.external.sort import external_sort
from repro.external.stream import BlockStream
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore

from tests.conftest import random_rects

MEM = MemoryModel(memory_records=64, block_records=8)


def make_items(n, seed=0):
    return [(r, v) for r, v in random_rects(n, seed=seed)]


class TestOrderingHelpers:
    def test_order_key_uses_corner_coord(self):
        r = Rect((1.0, 2.0), (3.0, 4.0))
        assert _order_key(0)((r, 9)) == (1.0, 9)
        assert _order_key(3)((r, 9)) == (4.0, 9)

    def test_sorted_orderings_are_sorted(self):
        items = make_items(50, seed=1)
        orderings = _sorted_orderings(items, dim=2)
        assert len(orderings) == 4
        for o, lst in enumerate(orderings):
            keys = [_order_key(o)(item) for item in lst]
            assert keys == sorted(keys)

    def test_unit_mbrs_cover_chunks(self):
        items = make_items(20, seed=2)
        boxes = _unit_mbrs(items, unit=6)
        assert len(boxes) == 4  # 6+6+6+2
        for i, box in enumerate(boxes):
            for rect, _ in items[i * 6 : (i + 1) * 6]:
                assert box.contains_rect(rect)


class TestBinarySplitMem:
    def test_split_at_unit_boundary(self):
        items = make_items(40, seed=3)
        orderings = _sorted_orderings(items, dim=2)
        left, right = _binary_split_mem(orderings, unit=10)
        assert len(left[0]) % 10 == 0
        assert len(left[0]) + len(right[0]) == 40

    def test_split_preserves_orderings(self):
        items = make_items(60, seed=4)
        orderings = _sorted_orderings(items, dim=2)
        left, right = _binary_split_mem(orderings, unit=15)
        for side in (left, right):
            for o, lst in enumerate(side):
                keys = [_order_key(o)(item) for item in lst]
                assert keys == sorted(keys)

    def test_partition_group_sizes(self):
        items = make_items(100, seed=5)
        orderings = _sorted_orderings(items, dim=2)
        groups = _partition_mem(orderings, unit=16)
        sizes = [len(g[0]) for g in groups]
        assert sum(sizes) == 100
        assert all(size <= 16 for size in sizes)
        # Rounding to unit multiples: at most one non-full group.
        assert sum(1 for size in sizes if size < 16) <= 1


class TestExternalFaceInternals:
    def _streams(self, items):
        store = BlockStore()
        base = BlockStream.from_records(store, items, 8)
        streams = [
            external_sort(base, key=_order_key(o), memory=MEM) for o in range(4)
        ]
        base.free()
        return streams

    def test_scan_units_matches_memory_version(self):
        items = make_items(50, seed=6)
        streams = self._streams(items)
        for o in range(4):
            ordered = sorted(items, key=_order_key(o))
            expected = _unit_mbrs(ordered, unit=12)
            boxes, boundaries = _scan_units_and_keys(streams[o], unit=12, ordering=o)
            assert boxes == expected
            # Boundary keys are the keys of the last item in each chunk.
            for i, key in enumerate(boundaries):
                chunk = ordered[i * 12 : (i + 1) * 12]
                assert key == _order_key(o)(chunk[-1])

    def test_external_split_agrees_with_memory_split(self):
        items = make_items(48, seed=7)
        # Memory face.
        left_mem, _ = _binary_split_mem(_sorted_orderings(items, dim=2), unit=12)
        left_ids_mem = {p for _, p in left_mem[0]}
        # External face on identical data.
        streams = self._streams(items)
        left_ext, right_ext = _binary_split_ext(streams, unit=12)
        left_ids_ext = {p for _, p in left_ext[0].read_all()}
        assert left_ids_ext == left_ids_mem
        assert len(left_ids_ext) + len(right_ext[0]) == 48

    def test_external_split_consumes_inputs(self):
        items = make_items(40, seed=8)
        streams = self._streams(items)
        store = streams[0].store
        left, right = _binary_split_ext(streams, unit=10)
        expected_blocks = sum(s.block_count for s in left + right)
        assert len(store) == expected_blocks
