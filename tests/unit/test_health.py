"""Unit tests for tree-quality analytics and the degradation score.

The pinned numbers on the hand-built tree are exact in plain float
arithmetic, so they must hold bit-identically under both kernel
backends (the CI matrix runs this file with and without
``REPRO_NO_NUMPY=1``).
"""

import asyncio
import dataclasses

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.obs import MetricsRegistry
from repro.obs.health import (
    DEGRADATION_WEIGHTS,
    decode_baseline,
    degradation_score,
    encode_baseline,
    family_quality,
    index_quality,
    quality_baseline,
    tree_quality,
)
from repro.prtree.prtree import build_prtree
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.server import WindowRequest
from repro.service import AsyncQueryService
from repro.storage import PagedTree, ShardedTree, pack_tree, shard_pack

from tests.conftest import random_rects


def hand_tree() -> RTree:
    """Two half-full leaves under one root, with known geometry.

    Directory entry MBRs are (0,0)-(2,1) and (0,0.5)-(2,1.5): overlap
    area 1.0 over 4.0 of entry area, zero dead space everywhere, margin
    3.0 per directory entry.
    """
    store = BlockStore()
    leaf1 = Node(
        True,
        [(Rect((0.0, 0.0), (1.0, 1.0)), 0), (Rect((1.0, 0.0), (2.0, 1.0)), 1)],
    )
    leaf2 = Node(
        True,
        [(Rect((0.0, 0.5), (1.0, 1.5)), 2), (Rect((1.0, 0.5), (2.0, 1.5)), 3)],
    )
    id1 = store.allocate(leaf1)
    id2 = store.allocate(leaf2)
    root = Node(False, [(leaf1.mbr(), id1), (leaf2.mbr(), id2)])
    root_id = store.allocate(root)
    return RTree(store, root_id, dim=2, fanout=4, height=2, size=4)


class TestTreeQuality:
    def test_hand_built_numbers_exact(self):
        q = tree_quality(hand_tree())
        assert q.height == 2 and q.size == 4 and q.fanout == 4
        assert q.nodes == 3
        assert len(q.levels) == 2

        root = q.levels[0]
        assert (root.level, root.nodes, root.entries) == (0, 1, 2)
        assert not root.leaf
        assert root.occupancy == 0.5
        assert root.area == 4.0
        assert root.overlap == 1.0
        assert root.dead == 0.0
        assert root.perimeter == 6.0

        leaves = q.levels[1]
        assert (leaves.level, leaves.nodes, leaves.entries) == (1, 2, 4)
        assert leaves.leaf
        assert leaves.occupancy == 0.5
        assert leaves.area == 4.0
        assert leaves.overlap == 0.0
        assert leaves.dead == 0.0
        assert leaves.perimeter == 8.0

        assert q.leaf_occupancy == 0.5
        assert q.overlap_ratio == 0.25
        assert q.dead_ratio == 0.0
        assert q.mean_margin == 3.0
        # An in-memory BlockStore has no freelist accounting.
        assert q.free_blocks == 0 and q.pending_reclaim == 0
        assert q.fragmentation == 0.0

    def test_walk_is_deterministic(self):
        assert tree_quality(hand_tree()) == tree_quality(hand_tree())

    def test_bulk_loaded_tree_is_tight(self):
        tree = build_prtree(BlockStore(), random_rects(1000, seed=3), 16)
        q = tree_quality(tree)
        assert q.leaf_occupancy > 0.95
        assert q.overlap_ratio >= 0.0
        assert q.dead_ratio >= 0.0
        assert sum(l.nodes for l in q.levels) == q.nodes == tree.node_count()

    def test_single_tree_index_quality(self):
        tree = hand_tree()
        aggregate, per_shard = index_quality(tree)
        assert aggregate == tree_quality(tree)
        assert per_shard == ()


class TestBaseline:
    def test_roundtrip(self):
        base = quality_baseline(tree_quality(hand_tree()))
        assert base["v"] == 1
        assert base["occ"] == 0.5 and base["ovr"] == 0.25
        assert decode_baseline(encode_baseline(base)) == base

    def test_decode_rejects_garbage(self):
        assert decode_baseline(None) is None
        assert decode_baseline(b"") is None
        assert decode_baseline(b"\x00\xff junk") is None
        assert decode_baseline(b"[1,2]") is None
        assert decode_baseline({"v": 99}) is None


class TestDegradationScore:
    def test_fresh_tree_scores_zero(self):
        q = tree_quality(hand_tree())
        score = degradation_score(q, quality_baseline(q))
        assert score == pytest.approx(0.0, abs=1e-9)

    def test_none_without_baseline(self):
        q = tree_quality(hand_tree())
        assert degradation_score(q, None) is None

    def test_component_weights_pinned(self):
        q = tree_quality(hand_tree())
        base = quality_baseline(q)
        # Halving occupancy is a relative drop of 0.5.
        damaged = dataclasses.replace(q, leaf_occupancy=0.25)
        assert degradation_score(damaged, base) == pytest.approx(
            DEGRADATION_WEIGHTS["occ"] * 0.5, abs=1e-9
        )
        # Doubling overlap is a relative growth of 1.0 on top.
        damaged = dataclasses.replace(
            q, leaf_occupancy=0.25, overlap_ratio=0.5
        )
        assert degradation_score(damaged, base) == pytest.approx(
            DEGRADATION_WEIGHTS["occ"] * 0.5 + DEGRADATION_WEIGHTS["ovr"],
            abs=1e-9,
        )

    def test_monotone_under_compounding_damage(self):
        q = tree_quality(hand_tree())
        base = quality_baseline(q)
        scores = []
        damaged = q
        for step in range(1, 6):
            damaged = dataclasses.replace(
                damaged,
                leaf_occupancy=q.leaf_occupancy * (1 - 0.1 * step),
                overlap_ratio=q.overlap_ratio * (1 + 0.5 * step),
                fragmentation=0.02 * step,
            )
            scores.append(degradation_score(damaged, base))
        assert scores == sorted(scores)
        assert scores[0] > 0.0

    def test_improvement_never_goes_negative(self):
        q = tree_quality(hand_tree())
        base = quality_baseline(q)
        improved = dataclasses.replace(
            q, leaf_occupancy=0.9, overlap_ratio=0.0
        )
        assert degradation_score(improved, base) == pytest.approx(
            0.0, abs=1e-9
        )


class TestPagedBaseline:
    def test_pack_records_baseline_and_scores_zero(self, tmp_path):
        tree = build_prtree(BlockStore(), random_rects(600, seed=5), 16)
        path = tmp_path / "health.pack"
        pack_tree(tree, path, block_size=1024)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            base = paged.health_baseline
            assert base is not None and base["v"] == 1
            assert base == quality_baseline(tree_quality(tree))
            score = degradation_score(tree_quality(paged), base)
            assert score == pytest.approx(0.0, abs=1e-9)

    def test_baseline_disabled(self, tmp_path):
        tree = build_prtree(BlockStore(), random_rects(100, seed=6), 8)
        path = tmp_path / "nobase.pack"
        pack_tree(tree, path, block_size=1024, baseline=False)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            assert paged.health_baseline is None
            assert degradation_score(tree_quality(paged), None) is None

    def test_baseline_survives_sync(self, tmp_path):
        data = random_rects(400, seed=7)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "sync.pack"
        pack_tree(tree, path, block_size=1024)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            base = paged.health_baseline
            paged.insert(Rect((0.1, 0.1), (0.2, 0.2)), "new")
            paged.sync()
        with PagedTree.open(path) as reopened:
            assert reopened.health_baseline == base

    def test_updates_worsen_the_score(self, tmp_path):
        data = random_rects(800, seed=8)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "decay.pack"
        pack_tree(tree, path, block_size=1024)
        with PagedTree.open(path, values=dict(tree.objects)) as paged:
            base = paged.health_baseline
            for rect, value in data[:300]:
                assert paged.delete(rect, value)
            score = degradation_score(tree_quality(paged), base)
        assert score is not None and score > 1e-3

    def test_sharded_baseline(self, tmp_path):
        data = random_rects(500, seed=9)
        tree = build_prtree(BlockStore(), data, 16)
        manifest = tmp_path / "fam.manifest"
        shard_pack(tree, manifest, shards=3, block_size=1024)
        with ShardedTree.open(manifest) as family:
            base = family.health_baseline
            assert base is not None and "imb" in base
            aggregate, per_shard = index_quality(family)
            assert len(per_shard) == family.n_shards
            assert aggregate.size == len(data)
            assert aggregate == family_quality(per_shard)
            score = degradation_score(aggregate, base)
            assert score == pytest.approx(0.0, abs=1e-9)


class TestServiceHealthMetrics:
    def test_health_and_explain_families_exported(self, tmp_path):
        data = random_rects(500, seed=12)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path / "svc.pack"
        pack_tree(tree, path, block_size=1024)
        registry = MetricsRegistry()

        async def drive():
            with PagedTree.open(path, values=dict(tree.objects)) as paged:
                async with AsyncQueryService(
                    paged,
                    metrics=registry,
                    explain=True,
                    health_interval=60.0,
                ) as service:
                    for _ in range(4):
                        await service.submit(
                            WindowRequest(Rect((0.1, 0.1), (0.6, 0.6)))
                        )

        asyncio.run(drive())
        text = registry.render_prometheus()
        assert 'repro_explain_plans_total{kind="window"}' in text
        assert 'repro_explain_nodes_visited_total{kind="window"}' in text
        assert 'repro_explain_pruning_efficiency{kind="window"}' in text
        assert 'repro_health_score{index="default"}' in text
        assert 'repro_health_leaf_occupancy{index="default"}' in text
        assert 'repro_health_fragmentation{index="default"}' in text

    def test_health_interval_validation(self):
        tree = build_prtree(BlockStore(), random_rects(50, seed=1), 8)
        with pytest.raises(ValueError):
            AsyncQueryService(tree, health_interval=0.0)
