"""Unit tests for query-workload generators and the report tables."""

import pytest

from repro.experiments.report import Table
from repro.geometry.rect import Rect
from repro.workloads.queries import (
    cluster_line_queries,
    dataset_bounds,
    skewed_queries,
    square_queries,
)


class TestSquareQueries:
    UNIT = Rect((0.0, 0.0), (1.0, 1.0))

    def test_count_and_determinism(self):
        a = square_queries(self.UNIT, 1.0, count=50, seed=1)
        b = square_queries(self.UNIT, 1.0, count=50, seed=1)
        assert len(a) == 50 and list(a) == list(b)

    def test_area_is_percent_of_bounds(self):
        for window in square_queries(self.UNIT, 1.0, count=20, seed=2):
            assert window.area() == pytest.approx(0.01)

    def test_windows_inside_bounds(self):
        bounds = Rect((10.0, 20.0), (30.0, 40.0))
        for window in square_queries(bounds, 2.0, count=30, seed=3):
            assert bounds.contains_rect(window)

    def test_non_square_bounds(self):
        wide = Rect((0.0, 0.0), (100.0, 1.0))
        for window in square_queries(wide, 0.5, count=10, seed=4):
            assert wide.contains_rect(window)
            assert window.side(0) == pytest.approx(window.side(1))  # square

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            square_queries(self.UNIT, 0.0)
        with pytest.raises(ValueError):
            square_queries(self.UNIT, 150.0)

    def test_zero_area_bounds_raise(self):
        line = Rect((0.0, 0.5), (1.0, 0.5))
        with pytest.raises(ValueError):
            square_queries(line, 1.0)


class TestSkewedQueries:
    def test_c1_is_plain_squares(self):
        for window in skewed_queries(1, count=10, seed=5):
            assert window.side(0) == pytest.approx(window.side(1))

    def test_high_c_compresses_y(self):
        flat = skewed_queries(1, count=50, seed=6)
        squeezed = skewed_queries(9, count=50, seed=6)
        mean_height = lambda wl: sum(w.side(1) for w in wl) / len(wl)
        assert mean_height(squeezed) < mean_height(flat)

    def test_windows_in_unit_square(self):
        for window in skewed_queries(5, count=30, seed=7):
            assert 0 <= window.lo[0] and window.hi[0] <= 1
            assert 0 <= window.lo[1] and window.hi[1] <= 1


class TestClusterLineQueries:
    def test_spans_full_width(self):
        for window in cluster_line_queries(100, count=10, seed=8):
            assert window.lo[0] == 0.0 and window.hi[0] == 1.0

    def test_thin_and_in_band(self):
        for window in cluster_line_queries(100, count=10, area=1e-7, seed=9):
            assert window.side(1) == pytest.approx(1e-7)
            assert abs(window.lo[1] - 0.5) < 1e-4

    def test_dataset_bounds_helper(self):
        data = [(Rect((0, 0), (1, 1)), 0), (Rect((2, 2), (3, 3)), 1)]
        assert dataset_bounds(data) == Rect((0, 0), (3, 3))


class TestReportTable:
    def test_add_row_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", 1234.5)
        out = t.render()
        assert "demo" in out and "1,234" in out

    def test_add_row_wrong_arity(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_extraction(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.add_note("hello note")
        assert "hello note" in t.render()

    def test_markdown_output(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        md = t.to_markdown()
        assert md.startswith("**demo**")
        assert "| 1 | 2 |" in md
