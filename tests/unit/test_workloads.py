"""Unit tests for query-workload generators and the report tables."""

import pytest

from repro.experiments.report import Table
from repro.geometry.rect import Rect
from repro.workloads.join import (
    cluster_uniform_join,
    shifted_join,
    uniform_join,
)
from repro.workloads.knn import (
    cluster_knn_queries,
    skewed_knn_queries,
    uniform_knn_queries,
)
from repro.workloads.queries import (
    cluster_line_queries,
    dataset_bounds,
    skewed_queries,
    square_queries,
)


class TestSquareQueries:
    UNIT = Rect((0.0, 0.0), (1.0, 1.0))

    def test_count_and_determinism(self):
        a = square_queries(self.UNIT, 1.0, count=50, seed=1)
        b = square_queries(self.UNIT, 1.0, count=50, seed=1)
        assert len(a) == 50 and list(a) == list(b)

    def test_area_is_percent_of_bounds(self):
        for window in square_queries(self.UNIT, 1.0, count=20, seed=2):
            assert window.area() == pytest.approx(0.01)

    def test_windows_inside_bounds(self):
        bounds = Rect((10.0, 20.0), (30.0, 40.0))
        for window in square_queries(bounds, 2.0, count=30, seed=3):
            assert bounds.contains_rect(window)

    def test_non_square_bounds(self):
        wide = Rect((0.0, 0.0), (100.0, 1.0))
        for window in square_queries(wide, 0.5, count=10, seed=4):
            assert wide.contains_rect(window)
            assert window.side(0) == pytest.approx(window.side(1))  # square

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            square_queries(self.UNIT, 0.0)
        with pytest.raises(ValueError):
            square_queries(self.UNIT, 150.0)

    def test_zero_area_bounds_raise(self):
        line = Rect((0.0, 0.5), (1.0, 0.5))
        with pytest.raises(ValueError):
            square_queries(line, 1.0)


class TestSkewedQueries:
    def test_c1_is_plain_squares(self):
        for window in skewed_queries(1, count=10, seed=5):
            assert window.side(0) == pytest.approx(window.side(1))

    def test_high_c_compresses_y(self):
        flat = skewed_queries(1, count=50, seed=6)
        squeezed = skewed_queries(9, count=50, seed=6)
        mean_height = lambda wl: sum(w.side(1) for w in wl) / len(wl)
        assert mean_height(squeezed) < mean_height(flat)

    def test_windows_in_unit_square(self):
        for window in skewed_queries(5, count=30, seed=7):
            assert 0 <= window.lo[0] and window.hi[0] <= 1
            assert 0 <= window.lo[1] and window.hi[1] <= 1


class TestClusterLineQueries:
    def test_spans_full_width(self):
        for window in cluster_line_queries(100, count=10, seed=8):
            assert window.lo[0] == 0.0 and window.hi[0] == 1.0

    def test_thin_and_in_band(self):
        for window in cluster_line_queries(100, count=10, area=1e-7, seed=9):
            assert window.side(1) == pytest.approx(1e-7)
            assert abs(window.lo[1] - 0.5) < 1e-4

    def test_dataset_bounds_helper(self):
        data = [(Rect((0, 0), (1, 1)), 0), (Rect((2, 2), (3, 3)), 1)]
        assert dataset_bounds(data) == Rect((0, 0), (3, 3))


class TestKNNWorkloads:
    def test_uniform_count_k_and_determinism(self):
        a = uniform_knn_queries(count=40, k=7, seed=1)
        b = uniform_knn_queries(count=40, k=7, seed=1)
        assert len(a) == 40 and a.k == 7
        assert list(a) == list(b)
        assert all(0.0 <= x <= 1.0 and 0.0 <= y <= 1.0 for x, y in a)

    def test_uniform_respects_bounds_and_dim(self):
        bounds = Rect((10.0, 20.0), (30.0, 40.0))
        wl = uniform_knn_queries(count=25, k=3, seed=2, bounds=bounds)
        assert all(bounds.contains_point(p) for p in wl)
        wl3 = uniform_knn_queries(count=5, k=3, seed=2, dim=3)
        assert all(len(p) == 3 for p in wl3)

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            uniform_knn_queries(k=-1)

    def test_skewed_compresses_y(self):
        wl = skewed_knn_queries(c=7, count=200, seed=3)
        mean_y = sum(y for _, y in wl) / len(wl)
        assert mean_y < 0.2  # E[y^7] = 1/8 for uniform y

    def test_skewed_invalid_c(self):
        with pytest.raises(ValueError):
            skewed_knn_queries(c=0)

    def test_cluster_points_in_band(self):
        wl = cluster_knn_queries(count=50, k=5, cluster_extent=1e-5, seed=4)
        assert all(abs(y - 0.5) <= 0.5e-5 for _, y in wl)


class TestJoinWorkloads:
    def test_uniform_sizes_and_determinism(self):
        a = uniform_join(100, 60, seed=1)
        b = uniform_join(100, 60, seed=1)
        assert len(a.left) == 100 and len(a.right) == 60
        assert len(a) == 160
        assert a.left == b.left and a.right == b.right
        # The two sides are independent draws.
        assert a.left != a.right

    def test_shifted_translates_by_offset(self):
        wl = shifted_join(50, offset=0.003, seed=2)
        for (ra, va), (rb, vb) in zip(wl.left, wl.right):
            assert va == vb
            if rb.hi[0] < 1.0 and rb.hi[1] < 1.0:  # not clamped
                assert rb.lo[0] == pytest.approx(ra.lo[0] + 0.003)
                assert rb.lo[1] == pytest.approx(ra.lo[1] + 0.003)

    def test_shifted_stays_in_unit_square(self):
        wl = shifted_join(200, offset=0.5, seed=3)
        for rect, _ in wl.right:
            assert rect.hi[0] <= 1.0 and rect.hi[1] <= 1.0

    def test_small_offset_keeps_self_matches(self):
        wl = shifted_join(100, offset=0.001, max_side=0.05, seed=4)
        matching = sum(
            1 for (ra, _), (rb, _) in zip(wl.left, wl.right)
            if ra.intersects(rb)
        )
        assert matching > 50  # offset ≪ typical side: most still overlap

    def test_cluster_uniform_shapes(self):
        wl = cluster_uniform_join(300, 150, seed=5)
        assert len(wl.left) == 300 and len(wl.right) == 150
        assert all(rect.is_point() for rect, _ in wl.left)


class TestReportTable:
    def test_add_row_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", 1234.5)
        out = t.render()
        assert "demo" in out and "1,234" in out

    def test_add_row_wrong_arity(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_extraction(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.add_note("hello note")
        assert "hello note" in t.render()

    def test_markdown_output(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        md = t.to_markdown()
        assert md.startswith("**demo**")
        assert "| 1 | 2 |" in md
