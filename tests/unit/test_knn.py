"""Unit tests for the best-first kNN engine."""

import math

import pytest

from tests.conftest import random_rects

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect, point_rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.knn import KNNEngine, brute_force_knn, knn

BUILDERS = [build_prtree, build_hilbert]
BUILDER_IDS = ["PR", "H"]


def distances(neighbors):
    return [round(nb.distance, 12) for nb in neighbors]


@pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
class TestKNNMatchesOracle:
    def test_matches_brute_force(self, builder, small_data):
        tree = builder(BlockStore(), small_data, 8)
        for target in [(0.5, 0.5), (0.0, 0.0), (0.9, 0.1)]:
            got, _ = KNNEngine(tree).knn(target, 10)
            want = brute_force_knn(small_data, target, 10)
            assert distances(got) == distances(want)

    def test_rect_target(self, builder, small_data):
        tree = builder(BlockStore(), small_data, 8)
        target = Rect((0.4, 0.4), (0.45, 0.45))
        got, _ = KNNEngine(tree).knn(target, 8)
        want = brute_force_knn(small_data, target, 8)
        assert distances(got) == distances(want)

    def test_target_outside_data(self, builder, small_data):
        tree = builder(BlockStore(), small_data, 8)
        got, _ = KNNEngine(tree).knn((5.0, -3.0), 4)
        want = brute_force_knn(small_data, (5.0, -3.0), 4)
        assert distances(got) == distances(want)

    def test_k_larger_than_tree_returns_everything(self, builder):
        data = random_rects(25, seed=3)
        tree = builder(BlockStore(), data, 4)
        got, _ = KNNEngine(tree).knn((0.5, 0.5), 100)
        assert len(got) == 25
        assert distances(got) == distances(
            brute_force_knn(data, (0.5, 0.5), 100)
        )

    def test_3d(self, builder):
        data = random_rects(80, seed=5, dim=3)
        tree = builder(BlockStore(), data, 4)
        target = (0.5, 0.5, 0.5)
        got, _ = KNNEngine(tree).knn(target, 6)
        assert distances(got) == distances(brute_force_knn(data, target, 6))


class TestIncrementalNearest:
    def test_yields_nondecreasing_distances(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        it = KNNEngine(tree).nearest((0.2, 0.8))
        dists = [next(it).distance for _ in range(40)]
        assert dists == sorted(dists)

    def test_exhausts_to_full_dataset(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        all_neighbors = list(KNNEngine(tree).nearest((0.5, 0.5)))
        assert len(all_neighbors) == len(small_data)
        assert sorted(nb.value for nb in all_neighbors) == sorted(
            v for _, v in small_data
        )

    def test_lazy_iteration_costs_less_than_exhaustion(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 16)
        engine = KNNEngine(tree)
        it = engine.nearest((0.5, 0.5))
        for _ in range(5):
            next(it)
        assert engine.totals.leaf_reads < tree.leaf_count()

    def test_stats_accumulate_while_consuming(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = KNNEngine(tree)
        it = engine.nearest((0.1, 0.1))
        next(it)
        assert engine.totals.queries == 1
        assert engine.totals.reported == 1
        leaf_reads_at_one = engine.totals.leaf_reads
        for _ in range(len(small_data) - 1):
            next(it)
        assert engine.totals.reported == len(small_data)
        assert engine.totals.leaf_reads >= leaf_reads_at_one


class TestKNNEdgeCases:
    def test_empty_tree(self):
        tree = build_prtree(BlockStore(), [], 8)
        got, stats = KNNEngine(tree).knn((0.5, 0.5), 3)
        assert got == []
        assert stats.reported == 0 and stats.queries == 1

    def test_k_zero(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        got, stats = KNNEngine(tree).knn((0.5, 0.5), 0)
        assert got == [] and stats.queries == 1 and stats.leaf_reads == 0

    def test_negative_k_raises(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        with pytest.raises(ValueError):
            KNNEngine(tree).knn((0.5, 0.5), -1)

    def test_dimension_mismatch_raises_eagerly(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = KNNEngine(tree)
        with pytest.raises(ValueError):
            engine.nearest((0.5,))  # 1-d point, 2-d tree; no next() needed
        with pytest.raises(ValueError):
            engine.knn((0.5, 0.5, 0.5), 3)
        with pytest.raises(ValueError):
            engine.knn(Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)), 3)
        with pytest.raises(ValueError):
            engine.knn((0.5,), 0)  # k == 0 must not mask the bad target

    def test_zero_distance_for_containing_rect(self):
        data = [(Rect((0.0, 0.0), (1.0, 1.0)), "big")]
        tree = build_prtree(BlockStore(), data, 4)
        got, _ = KNNEngine(tree).knn((0.5, 0.5), 1)
        assert got[0].distance == 0.0 and got[0].value == "big"

    def test_values_attached(self):
        data = [(point_rect((i / 10, 0.0)), f"p{i}") for i in range(10)]
        tree = build_prtree(BlockStore(), data, 4)
        got = knn(tree, (0.0, 0.0), 3)
        assert [nb.value for nb in got] == ["p0", "p1", "p2"]
        assert got[1].distance == pytest.approx(0.1)


class TestKNNAccounting:
    def test_stats_per_call_sum_to_totals(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = KNNEngine(tree)
        per_call = []
        for target in [(0.1, 0.1), (0.9, 0.9), (0.5, 0.5)]:
            _, stats = engine.knn(target, 5)
            per_call.append(stats)
        assert engine.totals.queries == 3
        assert engine.totals.leaf_reads == sum(s.leaf_reads for s in per_call)
        assert engine.totals.reported == 15

    def test_warm_cache_internal_reads_zero(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 8)
        engine = KNNEngine(tree)
        engine.knn((0.5, 0.5), len(medium_data))  # touch every node
        _, stats = engine.knn((0.3, 0.7), 10)
        assert stats.internal_reads == 0
        assert stats.internal_visits > 0

    def test_cache_disabled_counts_every_internal_read(self, small_data):
        tree = build_prtree(BlockStore(), small_data, 8)
        engine = KNNEngine(tree, cache_internal=False)
        engine.knn((0.5, 0.5), 5)
        engine.reset()
        _, stats = engine.knn((0.5, 0.5), 5)
        assert stats.internal_reads == stats.internal_visits > 0

    def test_branch_and_bound_reads_few_leaves(self, medium_data):
        tree = build_prtree(BlockStore(), medium_data, 16)
        _, stats = KNNEngine(tree).knn((0.5, 0.5), 5)
        # 5 neighbors out of 2000 rects must not visit most of the tree.
        assert stats.leaf_reads <= tree.leaf_count() // 4


class TestBruteForceOracle:
    def test_sorted_and_truncated(self):
        data = [(point_rect((float(i), 0.0)), i) for i in range(5)]
        got = brute_force_knn(data, (0.0, 0.0), 3)
        assert [nb.value for nb in got] == [0, 1, 2]
        assert got[2].distance == pytest.approx(2.0)

    def test_euclidean_distance(self):
        data = [(point_rect((3.0, 4.0)), "a")]
        (nb,) = brute_force_knn(data, (0.0, 0.0), 1)
        assert nb.distance == pytest.approx(5.0)
        assert math.isclose(nb.distance, 5.0)
