"""Unit tests for the experiment CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_panel_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure15", "--panel", "bogus"])


class TestRun:
    def test_run_theorem3_stdout(self, capsys):
        assert main(["run", "theorem3", "--n", "256", "--fanout", "8",
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3" in out
        assert "PR" in out

    def test_run_writes_file(self, tmp_path, capsys):
        assert main([
            "run", "theorem3", "--n", "256", "--fanout", "8",
            "--queries", "2", "--out", str(tmp_path),
        ]) == 0
        written = tmp_path / "theorem3.txt"
        assert written.exists()
        assert "Theorem 3" in written.read_text()

    def test_run_markdown(self, tmp_path):
        main([
            "run", "theorem3", "--n", "256", "--fanout", "8",
            "--queries", "2", "--out", str(tmp_path), "--markdown",
        ])
        text = (tmp_path / "theorem3.md").read_text()
        assert text.startswith("**")
        assert "|" in text

    def test_run_figure15_panel(self, capsys):
        assert main([
            "run", "figure15", "--n", "400", "--fanout", "8",
            "--queries", "3", "--panel", "skewed",
        ]) == 0
        out = capsys.readouterr().out
        assert "skewed" in out


class TestPackAndServe:
    def test_pack_writes_index(self, tmp_path, capsys):
        out = tmp_path / "idx.pack"
        assert main([
            "pack", str(out), "--variant", "PR", "--dataset", "uniform",
            "--n", "500", "--fanout", "16",
        ]) == 0
        assert out.exists()
        assert "pack: PR over uniform" in capsys.readouterr().out

    def test_pack_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["pack", "x.pack", "--dataset", "bogus"]
            )

    def test_serve_bench_over_packed_index(self, tmp_path, capsys):
        out = tmp_path / "idx.pack"
        assert main([
            "pack", str(out), "--variant", "H", "--dataset", "uniform",
            "--n", "500", "--fanout", "16",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve-bench", "--index", str(out), "--requests", "60",
            "--batch-size", "20", "--cache-pages", "16",
        ]) == 0
        text = capsys.readouterr().out
        assert "serve-bench: 60 mixed requests" in text
        assert "req_per_s" in text

    def test_pack_shards_writes_manifest_and_shard_files(
        self, tmp_path, capsys
    ):
        out = tmp_path / "idx.manifest"
        assert main([
            "pack", str(out), "--variant", "PR", "--dataset", "uniform",
            "--n", "600", "--fanout", "16", "--shards", "3",
        ]) == 0
        assert out.exists()
        assert len(list(tmp_path.glob("idx.manifest.shard*"))) == 3
        text = capsys.readouterr().out
        assert "3 shards" in text
        assert "shard manifest" in text

    def test_serve_bench_over_shard_manifest(self, tmp_path, capsys):
        out = tmp_path / "idx.manifest"
        assert main([
            "pack", str(out), "--dataset", "uniform", "--n", "600",
            "--fanout", "16", "--shards", "3",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve-bench", "--index", str(out), "--requests", "40",
            "--batch-size", "20", "--cache-pages", "16", "--workers", "2",
        ]) == 0
        text = capsys.readouterr().out
        assert "3 shards" in text
        assert "per-shard balance" in text

    def test_serve_bench_builds_temporary_sharded_index(self, capsys):
        assert main([
            "serve-bench", "--requests", "30", "--batch-size", "15",
            "--dataset", "uniform", "--n", "400", "--shards", "2",
        ]) == 0
        text = capsys.readouterr().out
        assert "2 shards" in text

    def test_serve_bench_builds_temporary_index(self, capsys):
        assert main([
            "serve-bench", "--requests", "30", "--batch-size", "15",
            "--dataset", "uniform", "--n", "400",
        ]) == 0
        assert "serve-bench: 30 mixed requests" in capsys.readouterr().out

    def test_update_bench(self, capsys):
        assert main([
            "update-bench", "--updates", "60", "--queries", "10",
            "--batch-size", "30", "--dataset", "uniform", "--n", "400",
            "--cache-pages", "64",
        ]) == 0
        text = capsys.readouterr().out
        assert "update-bench: 60 mixed inserts/deletes" in text
        assert "pages_flushed" in text
        assert "write-back:" in text
        assert "fresh bulk-load query" in text

    def test_run_figure12_small(self, capsys):
        assert main([
            "run", "figure12", "--n", "500", "--fanout", "8", "--queries", "3",
        ]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_memory_option_for_bulkload(self, capsys):
        assert main([
            "run", "figure9", "--fanout", "8", "--memory", "128",
        ]) == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_run_knn_with_k(self, capsys):
        assert main([
            "run", "knn", "--n", "400", "--fanout", "8",
            "--k", "3", "--queries", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "kNN" in out and "k=3" in out

    def test_run_join(self, capsys):
        assert main(["run", "join", "--n", "300", "--fanout", "8"]) == 0
        out = capsys.readouterr().out
        assert "Spatial join" in out and "uniform_join" in out

    def test_run_point(self, capsys):
        assert main([
            "run", "point", "--n", "400", "--fanout", "8", "--queries", "5",
        ]) == 0
        assert "stabbing" in capsys.readouterr().out


class TestServeAsync:
    def test_serve_async_sweep_prints_percentiles(self, capsys):
        assert main([
            "serve-async", "--rates", "400", "--requests", "40",
            "--n", "1500", "--max-batch", "16", "--executor-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "p50_ms" in out and "p99_ms" in out
        assert "rejected" in out

    def test_serve_async_mmap_sharded(self, capsys):
        assert main([
            "serve-async", "--rates", "600", "--requests", "30",
            "--n", "1500", "--shards", "2", "--mmap",
            "--executor-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out and "mmap" in out

    def test_serve_async_bad_rates(self, capsys):
        assert main([
            "serve-async", "--rates", "fast", "--n", "1500",
        ]) == 2
        assert "invalid --rates" in capsys.readouterr().err

    def test_serve_async_empty_rates(self, capsys):
        assert main(["serve-async", "--rates", ",", "--n", "1500"]) == 2
        assert "no rates" in capsys.readouterr().err

    def test_serve_bench_mmap_flag(self, capsys):
        assert main([
            "serve-bench", "--requests", "40", "--batch-size", "20",
            "--n", "1500", "--mmap",
        ]) == 0
        out = capsys.readouterr().out
        assert "mmap" in out and "p95_ms" in out

    def test_serve_async_nonpositive_rates(self, capsys):
        assert main([
            "serve-async", "--rates", "0,500", "--n", "1500",
        ]) == 2
        assert "positive" in capsys.readouterr().err

    def test_serve_async_user_index_untouched_by_default(
        self, tmp_path, capsys
    ):
        # Without an explicit --write-frac, serving a user-supplied
        # index must leave its bytes exactly as packed.
        index = tmp_path / "user.manifest"
        assert main([
            "pack", str(index), "--shards", "2", "--n", "1500",
        ]) == 0
        files = sorted(tmp_path.iterdir())
        before = {f.name: f.read_bytes() for f in files}
        assert main([
            "serve-async", "--index", str(index), "--rates", "800",
            "--requests", "30", "--executor-workers", "2",
        ]) == 0
        capsys.readouterr()
        assert {f.name: f.read_bytes() for f in sorted(tmp_path.iterdir())} == before


class TestHealthAndExplain:
    @pytest.fixture
    def index(self, tmp_path, capsys):
        path = tmp_path / "idx.pack"
        assert main([
            "pack", str(path), "--dataset", "uniform", "--n", "800",
            "--fanout", "16",
        ]) == 0
        capsys.readouterr()
        return path

    def test_health_reports_score(self, index, capsys):
        assert main(["health", "--index", str(index)]) == 0
        out = capsys.readouterr().out
        assert "index health" in out
        assert "degradation score" in out
        assert "occupancy" in out

    def test_health_score_only(self, index, capsys):
        assert main([
            "health", "--index", str(index), "--score-only",
        ]) == 0
        score = float(capsys.readouterr().out.strip())
        assert 0.0 <= score < 1e-6

    def test_health_requires_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["health"])

    def test_explain_renders_plans(self, index, capsys):
        assert main([
            "explain", "--index", str(index), "--kind", "window",
            "--queries", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "explain: 4 window requests" in out
        assert "efficiency" in out
        assert "worst plan" in out and "L0 root" in out

    def test_explain_trace_self_check(self, index, tmp_path, capsys):
        trace = tmp_path / "explain.jsonl"
        assert main([
            "explain", "--index", str(index), "--queries", "3",
            "--trace", str(trace),
        ]) == 0
        assert trace.exists()
        assert f"wrote {trace}" in capsys.readouterr().out

    def test_explain_sharded_has_no_plans(self, tmp_path, capsys):
        manifest = tmp_path / "fam.manifest"
        assert main([
            "pack", str(manifest), "--shards", "2", "--dataset",
            "uniform", "--n", "800", "--fanout", "16",
        ]) == 0
        capsys.readouterr()
        assert main([
            "explain", "--index", str(manifest), "--queries", "3",
        ]) == 0
        assert "no per-query plans" in capsys.readouterr().out

    def test_serve_bench_explain_notes(self, index, capsys):
        assert main([
            "serve-bench", "--index", str(index), "--requests", "60",
            "--batch-size", "30", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "explain window:" in out
        assert "mean pruning efficiency" in out

    def test_serve_async_health_metrics(self, index, tmp_path, capsys):
        prom = tmp_path / "health.prom"
        assert main([
            "serve-async", "--index", str(index), "--rates", "800",
            "--requests", "40", "--executor-workers", "2",
            "--explain", "--health-interval", "30",
            "--metrics", str(prom),
        ]) == 0
        capsys.readouterr()
        text = prom.read_text()
        assert "repro_health_score" in text
        assert "repro_health_leaf_occupancy" in text
        assert "repro_explain_plans_total" in text
