"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore

# Tree builds inside @given bodies make per-example wall-clock noisy on
# slow CI runners; the property tests assert I/O counts, not time.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


def random_rects(n: int, seed: int = 0, dim: int = 2, max_side: float = 0.05):
    """Deterministic random rectangles in the unit cube, with index values."""
    rng = random.Random(seed)
    data = []
    for i in range(n):
        lo = [rng.random() * (1 - max_side) for _ in range(dim)]
        hi = [c + rng.random() * max_side for c in lo]
        data.append((Rect(lo, hi), i))
    return data


def random_windows(count: int, seed: int = 0, dim: int = 2, side: float = 0.2):
    """Deterministic random query windows in the unit cube."""
    rng = random.Random(seed)
    windows = []
    for _ in range(count):
        lo = [rng.random() * (1 - side) for _ in range(dim)]
        windows.append(Rect(lo, [c + side for c in lo]))
    return windows


def assert_same_matches(got, want, context=""):
    """Compare query results by their attached values."""
    got_values = sorted(value for _, value in got)
    want_values = sorted(value for _, value in want)
    assert got_values == want_values, (
        f"{context}: got {len(got_values)} matches, want {len(want_values)}"
    )


@pytest.fixture
def store() -> BlockStore:
    """A fresh simulated disk."""
    return BlockStore()


@pytest.fixture
def small_data():
    """300 small random rectangles (fast default dataset)."""
    return random_rects(300, seed=7)


@pytest.fixture
def medium_data():
    """2000 small random rectangles."""
    return random_rects(2000, seed=11)
