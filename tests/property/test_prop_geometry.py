"""Property-based tests for rectangles and the Hilbert curve."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hilbert import hilbert_index, hilbert_point
from repro.geometry.rect import Rect, mbr_of


coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw, dim=2):
    lo = [draw(coords) for _ in range(dim)]
    hi = [c + draw(st.floats(min_value=0, max_value=1e6)) for c in lo]
    return Rect(lo, hi)


@st.composite
def points(draw, dim=2):
    return tuple(draw(coords) for _ in range(dim))


class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(rects(), rects(), rects())
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(rects(), rects())
    def test_intersects_iff_intersection_nonempty(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects(), rects())
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects())
    def test_self_intersection_identity(self, a):
        assert a.intersection(a) == a
        assert a.contains_rect(a)

    @given(rects(), rects())
    def test_containment_implies_intersection(self, a, b):
        if a.contains_rect(b):
            assert a.intersects(b)

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-6  # float slack on huge coords

    @given(rects(), rects())
    def test_union_area_at_least_max(self, a, b):
        assert a.union(b).area() >= max(a.area(), b.area()) - 1e-6

    @given(st.lists(rects(), min_size=1, max_size=12))
    def test_mbr_of_contains_all(self, items):
        box = mbr_of(items)
        assert all(box.contains_rect(r) for r in items)

    @given(st.lists(rects(), min_size=1, max_size=12))
    def test_mbr_is_tight(self, items):
        # Every face of the MBR touches at least one input rectangle.
        box = mbr_of(items)
        for axis in range(2):
            assert any(r.lo[axis] == box.lo[axis] for r in items)
            assert any(r.hi[axis] == box.hi[axis] for r in items)

    @given(rects(), points())
    def test_point_containment_consistent_with_rect(self, a, p):
        from repro.geometry.rect import point_rect

        assert a.contains_point(p) == a.contains_rect(point_rect(p))

    @given(rects(dim=3), rects(dim=3))
    def test_3d_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects())
    def test_corner_point_roundtrip(self, a):
        cp = a.corner_point()
        assert Rect(cp[:2], cp[2:]) == a
        for axis in range(4):
            assert a.corner_coord(axis) == cp[axis]


class TestHilbertProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    def test_roundtrip_random_points(self, dim, order, data):
        point = tuple(
            data.draw(st.integers(min_value=0, max_value=(1 << order) - 1))
            for _ in range(dim)
        )
        index = hilbert_index(point, order)
        assert hilbert_point(index, dim, order) == point

    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_2d_roundtrip_from_index(self, index):
        point = hilbert_point(index, 2, 6)
        assert hilbert_index(point, 6) == index

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=(1 << 10) - 1))
    def test_adjacent_indices_adjacent_cells_2d(self, index):
        a = hilbert_point(index - 1, 2, 5)
        b = hilbert_point(index, 2, 5)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=(1 << 12) - 1))
    def test_adjacent_indices_adjacent_cells_4d(self, index):
        a = hilbert_point(index - 1, 4, 3)
        b = hilbert_point(index, 4, 3)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @given(
        st.integers(min_value=0, max_value=(1 << 8) - 1),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
    )
    def test_distinct_points_distinct_indices(self, a, b):
        pa = (a % 16, a // 16)
        pb = (b % 16, b // 16)
        ia = hilbert_index(pa, 4)
        ib = hilbert_index(pb, 4)
        assert (ia == ib) == (pa == pb)
