"""Property-based tests for the external-memory substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.external.memory import MemoryModel
from repro.external.sort import external_sort, sort_pass_bound
from repro.external.stream import BlockStream, distribute
from repro.iomodel.blockstore import BlockStore


record_lists = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6), max_size=400
)


class TestStreamProperties:
    @given(record_lists, st.integers(min_value=1, max_value=16))
    def test_roundtrip_any_block_size(self, records, block_records):
        store = BlockStore()
        stream = BlockStream.from_records(store, records, block_records)
        assert stream.read_all() == records
        assert stream.block_count == -(-len(records) // block_records) if records else True

    @given(record_lists, st.integers(min_value=2, max_value=5))
    def test_distribute_partitions_exactly(self, records, buckets):
        store = BlockStore()
        stream = BlockStream.from_records(store, records, 7)
        outs = distribute(stream, lambda x: abs(x) % buckets, buckets)
        combined = [r for out in outs for r in out.read_all()]
        assert sorted(combined) == sorted(records)
        for i, out in enumerate(outs):
            assert all(abs(r) % buckets == i for r in out.read_all())


class TestSortProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        record_lists,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=4, max_value=12),
    )
    def test_sort_is_correct_permutation(self, records, block_records, mem_blocks):
        store = BlockStore()
        memory = MemoryModel(
            memory_records=mem_blocks * block_records * 4,
            block_records=block_records,
        )
        stream = BlockStream.from_records(store, records, block_records)
        out = external_sort(stream, key=lambda x: x, memory=memory)
        result = out.read_all()
        assert result == sorted(records)

    @settings(max_examples=20, deadline=None)
    @given(record_lists)
    def test_sort_io_within_bound(self, records):
        store = BlockStore()
        memory = MemoryModel(memory_records=32, block_records=4)
        stream = BlockStream.from_records(store, records, 4)
        before = store.counters.snapshot()
        external_sort(stream, key=lambda x: x, memory=memory)
        cost = (store.counters.snapshot() - before).total
        assert cost <= sort_pass_bound(len(records), memory)

    @settings(max_examples=20, deadline=None)
    @given(record_lists)
    def test_sort_leaves_no_garbage(self, records):
        store = BlockStore()
        memory = MemoryModel(memory_records=32, block_records=4)
        stream = BlockStream.from_records(store, records, 4)
        live_before = len(store)
        out = external_sort(stream, key=lambda x: x, memory=memory)
        assert len(store) == live_before + out.block_count

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10**6)), max_size=200))
    def test_sort_by_first_component_keeps_pairs(self, pairs):
        store = BlockStore()
        memory = MemoryModel(memory_records=32, block_records=4)
        stream = BlockStream.from_records(store, pairs, 4)
        out = external_sort(stream, key=lambda p: p[0], memory=memory)
        result = out.read_all()
        assert sorted(result) == sorted(pairs)
        assert [p[0] for p in result] == sorted(p[0] for p in pairs)
