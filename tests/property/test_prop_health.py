"""Property tests: tree-quality analytics are a pure function of the
committed tree structure.

The same packed index must report bit-identical health metrics across
close/reopen, mmap versus buffered reads, and historical ``at_epoch``
opens — anything else would make the degradation score drift with how
the index happens to be served rather than with what updates did to it.
"""

import dataclasses
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.obs.health import degradation_score, quality_baseline, tree_quality
from repro.prtree.prtree import build_prtree
from repro.storage import PagedTree, pack_tree

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def datasets(draw, min_size=4, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit), draw(unit)]
        hi = [
            min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.3)))
            for c in lo
        ]
        data.append((Rect(lo, hi), i))
    return data


def structural(quality):
    """Quality with the store-layout fields normalized away.

    A historical ``at_epoch`` open sees today's file allocation, so only
    the structural components must match the fresh pack exactly.
    """
    return dataclasses.replace(
        quality, free_blocks=0, pending_reclaim=0, fragmentation=0.0
    )


class TestHealthProperties:
    @settings(max_examples=10, deadline=None)
    @given(data=datasets(), builder=st.sampled_from([build_prtree, build_hilbert]))
    def test_identical_across_close_and_reopen(self, data, builder):
        tree = builder(BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "prop.pack")
            pack_tree(tree, path, block_size=512)
            with PagedTree.open(path, readonly=True) as first:
                q1 = tree_quality(first)
            with PagedTree.open(path, readonly=True) as second:
                q2 = tree_quality(second)
            assert q1 == q2
            # And both match the in-memory tree the pack came from.
            assert structural(q1) == structural(tree_quality(tree))

    @settings(max_examples=10, deadline=None)
    @given(data=datasets())
    def test_identical_mmap_vs_buffered(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "prop.pack")
            pack_tree(tree, path, block_size=512)
            with PagedTree.open(path, readonly=True, mmap=False) as plain:
                q_plain = tree_quality(plain)
            with PagedTree.open(path, readonly=True, mmap=True) as mapped:
                q_mmap = tree_quality(mapped)
            assert q_plain == q_mmap

    @settings(max_examples=8, deadline=None)
    @given(data=datasets(min_size=10))
    def test_at_epoch_open_reports_the_old_structure(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "prop.pack")
            pack_tree(tree, path, block_size=512)
            with PagedTree.open(path, readonly=True) as fresh:
                q_fresh = tree_quality(fresh)
            with PagedTree.open(path, values=dict(tree.objects)) as live:
                for rect, value in data[: len(data) // 2]:
                    assert live.delete(rect, value)
                live.sync()
                q_after = tree_quality(live)
            # Epoch 1 is the pack's commit: its health is the fresh one.
            with PagedTree.open(path, readonly=True, at_epoch=1) as old:
                assert structural(tree_quality(old)) == structural(q_fresh)
            with PagedTree.open(path, readonly=True) as newest:
                assert tree_quality(newest) == q_after

    @settings(max_examples=10, deadline=None)
    @given(data=datasets())
    def test_fresh_pack_scores_approximately_zero(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "prop.pack")
            pack_tree(tree, path, block_size=512)
            with PagedTree.open(path, readonly=True) as paged:
                score = degradation_score(
                    tree_quality(paged), paged.health_baseline
                )
            assert score is not None
            assert 0.0 <= score < 1e-9

    @settings(max_examples=10, deadline=None)
    @given(data=datasets())
    def test_baseline_roundtrips_through_the_descriptor(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        want = quality_baseline(tree_quality(tree))
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "prop.pack")
            pack_tree(tree, path, block_size=512)
            with PagedTree.open(path, readonly=True) as paged:
                got = paged.health_baseline
        # Structural components come from the identical walk; the
        # store-fragmentation component of a fresh pack is always 0.
        assert got == want or {
            k: v for k, v in got.items() if k != "frag"
        } == {k: v for k, v in want.items() if k != "frag"}
