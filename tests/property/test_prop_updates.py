"""Stateful property test: dynamic updates preserve index semantics.

A hypothesis rule-based machine drives an RTree (Guttman updates) and a
LogMethodPRTree through arbitrary insert/delete/query sequences and
compares both against a plain list model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.logmethod import LogMethodPRTree
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.rstar import rstar_insert
from repro.rtree.tree import RTree
from repro.rtree.update import delete, insert
from repro.rtree.validate import validate_rtree

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _make_rect(x, y, w, h):
    return Rect((x, y), (min(1.0, x + w), min(1.0, y + h)))


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RTree.create_empty(BlockStore(), dim=2, fanout=5)
        self.rstar_tree = RTree.create_empty(BlockStore(), dim=2, fanout=5)
        self.logtree = LogMethodPRTree(BlockStore(), fanout=5)
        self.model: list[tuple[Rect, int]] = []
        self.counter = 0

    @rule(x=unit, y=unit, w=unit, h=unit)
    def insert_rect(self, x, y, w, h):
        rect = _make_rect(x, y, w * 0.2, h * 0.2)
        value = self.counter
        self.counter += 1
        insert(self.tree, rect, value)
        rstar_insert(self.rstar_tree, rect, value)
        self.logtree.insert(rect, value)
        self.model.append((rect, value))

    @rule(data=st.data())
    def delete_some_rect(self, data):
        if not self.model:
            return
        idx = data.draw(st.integers(min_value=0, max_value=len(self.model) - 1))
        rect, value = self.model.pop(idx)
        assert delete(self.tree, rect, value)
        assert delete(self.rstar_tree, rect, value)
        assert self.logtree.delete(rect, value)

    @rule(x=unit, y=unit, s=unit)
    def query_window(self, x, y, s):
        window = _make_rect(x, y, s * 0.5, s * 0.5)
        want = sorted(v for _, v in brute_force_query(self.model, window))
        for indexed in (self.tree, self.rstar_tree):
            got_tree, _ = QueryEngine(indexed).query(window)
            assert sorted(v for _, v in got_tree) == want
        got_log = self.logtree.query(window)
        assert sorted(v for _, v in got_log) == want

    @invariant()
    def sizes_agree(self):
        assert len(self.tree) == len(self.model)
        assert len(self.rstar_tree) == len(self.model)
        assert len(self.logtree) == len(self.model)

    @invariant()
    def structures_are_valid(self):
        validate_rtree(self.tree, expect_size=len(self.model))
        validate_rtree(self.rstar_tree, expect_size=len(self.model))
        self.logtree.check_invariants()


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestDynamicIndex = DynamicIndexMachine.TestCase
