"""Property-based round-trip tests for tree serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.persist import deserialize_tree, serialize_tree
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import validate_rtree

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def datasets(draw, max_size=80):
    n = draw(st.integers(min_value=1, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit), draw(unit)]
        hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.4))) for c in lo]
        data.append((Rect(lo, hi), i))
    return data


class TestPersistProperties:
    @settings(max_examples=25, deadline=None)
    @given(datasets(), st.sampled_from([build_prtree, build_hilbert]))
    def test_roundtrip_preserves_everything(self, data, builder):
        tree = builder(BlockStore(), data, 8)
        image = serialize_tree(tree)
        clone = deserialize_tree(image, BlockStore(), dict(tree.objects))
        validate_rtree(clone, expect_size=len(data))
        assert clone.height == tree.height
        assert sorted(v for _, v in clone.all_data()) == sorted(
            v for _, v in tree.all_data()
        )

    @settings(max_examples=15, deadline=None)
    @given(datasets(max_size=50), unit, unit)
    def test_roundtrip_preserves_query_answers(self, data, x, y):
        window = Rect((x * 0.8, y * 0.8), (x * 0.8 + 0.2, y * 0.8 + 0.2))
        tree = build_prtree(BlockStore(), data, 8)
        clone = deserialize_tree(
            serialize_tree(tree), BlockStore(), dict(tree.objects)
        )
        got, _ = QueryEngine(clone).query(window)
        want = brute_force_query(data, window)
        assert sorted(v for _, v in got) == sorted(v for _, v in want)

    @settings(max_examples=15, deadline=None)
    @given(datasets(max_size=40))
    def test_serialize_is_deterministic(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        assert serialize_tree(tree) == serialize_tree(tree)

    @settings(max_examples=10, deadline=None)
    @given(datasets(max_size=40))
    def test_double_roundtrip_is_stable(self, data):
        tree = build_prtree(BlockStore(), data, 8)
        once = deserialize_tree(serialize_tree(tree), BlockStore(), dict(tree.objects))
        image_1 = serialize_tree(once)
        twice = deserialize_tree(image_1, BlockStore(), dict(once.objects))
        assert serialize_tree(twice) == image_1
