"""Property-based equivalence of the mutable paged tree.

Random interleaved insert/delete/query sequences applied to a
:class:`~repro.storage.paged.PagedTree` with a *tight* page cache (so
dirty pages are continually evicted and flushed mid-sequence) and to an
in-memory oracle tree must produce identical window/point/kNN answers
at every step — and, after ``close()`` and a cold reopen, an identical,
structurally valid tree.

The oracle starts as the exact in-memory tree the file was packed from
and receives the same update calls, so any divergence is a bug in the
write-back layer (stale page served, lost flush, freelist corruption),
not in the update algorithms themselves.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.storage import PagedTree, pack_tree

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def small_rects(draw):
    lo = [draw(unit) * 0.8, draw(unit) * 0.8]
    side = draw(st.floats(min_value=0.0, max_value=0.15))
    return Rect(lo, [c + side for c in lo])


@st.composite
def op_sequences(draw, max_ops=40):
    """(kind, payload) ops: inserts, deletes of live entries by index,
    and the three query kinds."""
    n_ops = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["insert", "delete", "window", "point", "knn"]
            )
        )
        if kind == "insert":
            ops.append(("insert", draw(small_rects())))
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(min_value=0, max_value=10**6))))
        elif kind == "window":
            ops.append(("window", draw(small_rects())))
        elif kind == "point":
            ops.append(("point", (draw(unit), draw(unit))))
        else:
            ops.append(
                ("knn", ((draw(unit), draw(unit)), draw(st.integers(0, 8))))
            )
    return ops


def _same_window(paged, oracle, window):
    got, _ = QueryEngine(paged).query(window)
    want, _ = QueryEngine(oracle).query(window)
    assert sorted(v for _, v in got) == sorted(v for _, v in want)


def _same_point(paged, oracle, point):
    got, _ = PointQueryEngine(paged).point_query(point)
    want, _ = PointQueryEngine(oracle).point_query(point)
    assert sorted(v for _, v in got) == sorted(v for _, v in want)


def _same_knn(paged, oracle, target, k):
    got, _ = KNNEngine(paged).knn(target, k)
    want, _ = KNNEngine(oracle).knn(target, k)
    assert [n.distance for n in got] == [n.distance for n in want]


@settings(max_examples=25, deadline=None)
@given(
    seed_n=st.integers(min_value=1, max_value=30),
    ops=op_sequences(),
    cache=st.integers(min_value=1, max_value=3),
)
def test_interleaved_updates_match_in_memory_oracle(seed_n, ops, cache):
    data = []
    for i in range(seed_n):
        x = (i * 0.37) % 0.9
        y = (i * 0.61) % 0.9
        data.append((Rect((x, y), (x + 0.05, y + 0.05)), i))

    oracle = build_prtree(BlockStore(), data, 8)
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "prop.pack")
        pack_tree(oracle, path, block_size=512)
        paged = PagedTree.open(
            path, values=dict(oracle.objects), cache_pages=cache
        )
        live = list(data)
        counter = 10**6  # fresh values, disjoint from the seed data's
        try:
            for kind, payload in ops:
                if kind == "insert":
                    counter += 1
                    paged.insert(payload, counter)
                    oracle.insert(payload, counter)
                    live.append((payload, counter))
                elif kind == "delete":
                    if not live:
                        continue
                    rect, value = live.pop(payload % len(live))
                    assert paged.delete(rect, value)
                    assert oracle.delete(rect, value)
                elif kind == "window":
                    _same_window(paged, oracle, payload)
                elif kind == "point":
                    _same_point(paged, oracle, payload)
                else:
                    target, k = payload
                    _same_knn(paged, oracle, target, k)
            # The tight cache must have spilled any non-trivial write
            # load through eviction-driven flushes, never losing a page.
            assert paged.page_store.cached_pages() <= cache
            _same_window(paged, oracle, Rect((0, 0), (1, 1)))
            objects = dict(paged.objects)
        finally:
            paged.close()

        # Cold reopen: everything must have reached the file.
        with PagedTree.open(path, values=objects, readonly=True) as again:
            validate_rtree(again, expect_size=len(live))
            assert again.size == oracle.size == len(live)
            assert again.height == oracle.height
            _same_window(again, oracle, Rect((0, 0), (1, 1)))
            for kind, payload in ops:
                if kind == "window":
                    _same_window(again, oracle, payload)
                elif kind == "point":
                    _same_point(again, oracle, payload)
                elif kind == "knn":
                    target, k = payload
                    _same_knn(again, oracle, target, k)
