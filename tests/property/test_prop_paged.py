"""Property-based equivalence: a PagedTree answers exactly like the
in-memory tree it was packed from, for every bulk-loading variant.

This is the storage engine's core guarantee — moving a tree through
``pack_tree`` onto a real file and paging it back lazily through a
bounded cache changes *where* nodes live, never *what* any query
answers or how many leaf I/Os the paper's accounting reports.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.storage import PagedTree, pack_tree

BUILDERS = {
    "PR": build_prtree,
    "H": build_hilbert,
    "H4": build_hilbert4,
    "TGS": build_tgs,
    "STR": build_str,
}

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def datasets(draw, max_size=60):
    n = draw(st.integers(min_value=1, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit), draw(unit)]
        hi = [
            min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.3)))
            for c in lo
        ]
        data.append((Rect(lo, hi), i))
    return data


def paged_copy(tree, tmpdir, cache_pages):
    path = os.path.join(tmpdir, "prop.pack")
    pack_tree(tree, path, block_size=512)
    return PagedTree.open(
        path, values=dict(tree.objects), cache_pages=cache_pages
    )


@pytest.mark.parametrize("variant", sorted(BUILDERS))
class TestPagedEqualsInMemory:
    @settings(max_examples=12, deadline=None)
    @given(data=datasets(), x=unit, y=unit, cache=st.integers(0, 6))
    def test_window_query_identical(self, variant, data, x, y, cache):
        window = Rect((x * 0.7, y * 0.7), (x * 0.7 + 0.3, y * 0.7 + 0.3))
        tree = BUILDERS[variant](BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            with paged_copy(tree, tmpdir, cache) as paged:
                validate_rtree(paged, expect_size=len(data))
                got, got_stats = QueryEngine(paged).query(window)
                want, want_stats = QueryEngine(tree).query(window)
                assert sorted(v for _, v in got) == sorted(
                    v for _, v in want
                )
                assert got_stats.leaf_reads == want_stats.leaf_reads

    @settings(max_examples=12, deadline=None)
    @given(data=datasets(), x=unit, y=unit)
    def test_point_query_identical(self, variant, data, x, y):
        tree = BUILDERS[variant](BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            with paged_copy(tree, tmpdir, cache_pages=4) as paged:
                got, _ = PointQueryEngine(paged).point_query((x, y))
                want, _ = PointQueryEngine(tree).point_query((x, y))
                assert sorted(v for _, v in got) == sorted(
                    v for _, v in want
                )

    @settings(max_examples=12, deadline=None)
    @given(data=datasets(), x=unit, y=unit, k=st.integers(0, 12))
    def test_knn_identical(self, variant, data, x, y, k):
        tree = BUILDERS[variant](BlockStore(), data, 8)
        with tempfile.TemporaryDirectory() as tmpdir:
            with paged_copy(tree, tmpdir, cache_pages=4) as paged:
                got, got_stats = KNNEngine(paged).knn((x, y), k)
                want, want_stats = KNNEngine(tree).knn((x, y), k)
                assert [n.distance for n in got] == [
                    n.distance for n in want
                ]
                assert got_stats.leaf_reads == want_stats.leaf_reads
