"""Property-based correctness for the query operators in repro.queries.

Companion to ``test_prop_queries.py``: for arbitrary rectangle sets,
arbitrary targets and every tree variant, kNN, spatial join and the
point-family queries must agree with their brute-force oracles.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.join import SpatialJoinEngine, brute_force_join
from repro.queries.knn import KNNEngine, brute_force_knn
from repro.queries.point import (
    PointQueryEngine,
    brute_force_containment,
    brute_force_point_query,
)
from repro.rtree.query import brute_force_query

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ALL_BUILDERS = [build_hilbert, build_hilbert4, build_tgs, build_str, build_prtree]
BUILDER_IDS = ["H", "H4", "TGS", "STR", "PR"]


@st.composite
def rect_datasets(draw, dim=2, max_size=50):
    n = draw(st.integers(min_value=0, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit) for _ in range(dim)]
        hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.3))) for c in lo]
        data.append((Rect(lo, hi), i))
    return data


@st.composite
def points(draw, dim=2):
    # Slightly outside the unit square too: kNN targets need not be
    # inside the data extent.
    coord = st.floats(min_value=-0.5, max_value=1.5, allow_nan=False)
    return tuple(draw(coord) for _ in range(dim))


@st.composite
def windows(draw, dim=2):
    lo = [draw(unit) for _ in range(dim)]
    hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.6))) for c in lo]
    return Rect(lo, hi)


class TestKNNProperties:
    @settings(max_examples=25, deadline=None)
    @given(rect_datasets(), points(), st.integers(min_value=1, max_value=12),
           st.integers(min_value=2, max_value=9))
    def test_matches_oracle_distances(self, data, target, k, fanout):
        want = [nb.distance for nb in brute_force_knn(data, target, k)]
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tree = builder(BlockStore(), data, fanout)
            got, _ = KNNEngine(tree).knn(target, k)
            assert len(got) == len(want), name
            for g, w in zip(got, want):
                assert math.isclose(g.distance, w, abs_tol=1e-9), name

    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(max_size=40), points())
    def test_incremental_is_sorted_and_complete(self, data, target):
        tree = build_prtree(BlockStore(), data, 4)
        got = list(KNNEngine(tree).nearest(target))
        assert len(got) == len(data)
        dists = [nb.distance for nb in got]
        assert dists == sorted(dists)
        assert sorted(nb.value for nb in got) == sorted(v for _, v in data)


class TestJoinProperties:
    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(max_size=35), rect_datasets(max_size=35),
           st.integers(min_value=2, max_value=9))
    def test_matches_oracle(self, left, right, fanout):
        want = sorted(brute_force_join(left, right))
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tl = builder(BlockStore(), left, fanout)
            tr = builder(BlockStore(), right, fanout)
            pairs, stats = SpatialJoinEngine(tl, tr).join()
            got = sorted((a[1], b[1]) for a, b in pairs)
            assert got == want, name
            assert stats.pairs == len(want), name

    @settings(max_examples=15, deadline=None)
    @given(rect_datasets(max_size=30))
    def test_join_is_symmetric(self, data):
        other = [(r, v + 1000) for r, v in data[::-1]]
        tl = build_prtree(BlockStore(), data, 4)
        tr = build_hilbert(BlockStore(), other, 4)
        forward, _ = SpatialJoinEngine(tl, tr).join()
        backward, _ = SpatialJoinEngine(tr, tl).join()
        assert sorted((a[1], b[1]) for a, b in forward) == sorted(
            (b[1], a[1]) for a, b in backward
        )


class TestPointFamilyProperties:
    @settings(max_examples=25, deadline=None)
    @given(rect_datasets(), points(), st.integers(min_value=2, max_value=9))
    def test_stabbing_matches_oracle(self, data, point, fanout):
        want = sorted(v for _, v in brute_force_point_query(data, point))
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tree = builder(BlockStore(), data, fanout)
            got, _ = PointQueryEngine(tree).point_query(point)
            assert sorted(v for _, v in got) == want, name

    @settings(max_examples=25, deadline=None)
    @given(rect_datasets(), windows(), st.integers(min_value=2, max_value=9))
    def test_containment_and_count_match_oracles(self, data, window, fanout):
        want_contained = sorted(
            v for _, v in brute_force_containment(data, window)
        )
        want_count = len(brute_force_query(data, window))
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tree = builder(BlockStore(), data, fanout)
            engine = PointQueryEngine(tree)
            got, _ = engine.containment_query(window)
            assert sorted(v for _, v in got) == want_contained, name
            count, _ = engine.count(window)
            assert count == want_count, name
