"""Property-based crash recovery: arbitrary scripts, arbitrary crashes.

The deterministic matrix (``tools/crashtest.py``) replays one scripted
workload at every write offset; this test lets Hypothesis drive the
*workload* too — random interleavings of insert / delete / sync, a
random crash offset (as a fraction of the golden run's write count) and
a random crash mode — over all three index shapes.  The invariant is
the durability contract of ``docs/durability.md``: reopening after any
crash yields a structurally valid tree whose contents equal the oracle
at the last committed sync (the packed baseline when nothing
committed).
"""

import pathlib
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.validate import validate_rtree
from repro.storage import (
    FaultInjector,
    PagedTree,
    ShardedTree,
    SimulatedCrash,
    pack_tree,
    shard_pack,
)

N = 30
MAX_INSERTS = 12
EVERYTHING = Rect((-1e12, -1e12), (1e12, 1e12))
DATA = [
    (Rect((float(i), float(i)), (i + 1.0, i + 1.0)), i) for i in range(N)
]
BASE_VALUES = {i: i for i in range(N)}
FULL_VALUES = dict(BASE_VALUES)
FULL_VALUES.update({N + k: 10_000 + k for k in range(MAX_INSERTS)})
BASELINE = sorted((tuple(r.lo), tuple(r.hi), v) for r, v in DATA)


@st.composite
def crash_scripts(draw):
    n_ops = draw(st.integers(min_value=2, max_value=10))
    ops = [("insert", 0)]  # at least one write, so the run crashes
    inserts = 1
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["insert", "delete", "sync"]))
        if kind == "insert" and inserts < MAX_INSERTS:
            ops.append(("insert", inserts))
            inserts += 1
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(0, N - 1))))
        else:
            ops.append(("sync",))
    frac = draw(
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True)
    )
    mode = draw(st.sampled_from(["clean", "torn", "omit"]))
    return ops, frac, mode


def _contents(tree):
    return sorted(
        (tuple(r.lo), tuple(r.hi), v) for r, v in tree.query(EVERYTHING)
    )


def _replay(tree, ops):
    for op in ops:
        if op[0] == "insert":
            k = op[1]
            tree.insert(
                Rect((1000.0 + k, float(k)), (1001.0 + k, k + 1.0)),
                10_000 + k,
            )
        elif op[0] == "delete":
            j = op[1]
            tree.delete(Rect((float(j), float(j)), (j + 1.0, j + 1.0)), j)
        else:
            tree.sync()


class _Shape:
    def __init__(self, variant: str, root: pathlib.Path):
        self.variant = variant
        self.tag = "manifest" if variant == "shard" else "store"
        self.golden = root / "golden"
        self.golden.mkdir()
        tree = build_prtree(BlockStore(), DATA, fanout=7)
        if variant == "shard":
            self.name = "i.manifest"
            shard_pack(tree, self.golden / self.name, shards=4, block_size=512)
        else:
            self.name = "i.pack"
            pack_tree(tree, self.golden / self.name, block_size=512)

    def open(self, directory, values, injector=None):
        if self.variant == "shard":
            return ShardedTree.open(
                directory / self.name, values=values, injector=injector
            )
        return PagedTree.open(
            directory / self.name,
            values=values,
            mmap=self.variant == "mmap",
            injector=injector,
        )

    def epochs(self, tree):
        if self.variant == "shard":
            return tuple(
                s.page_store.file_store.commit_epoch for s in tree.shards
            )
        return tree.page_store.file_store.commit_epoch

    def validate(self, tree):
        if self.variant == "shard":
            for shard in tree.shards:
                validate_rtree(shard)
        else:
            validate_rtree(tree)


def _copy(src, dst):
    if dst.exists():
        shutil.rmtree(dst)
    shutil.copytree(src, dst)


@pytest.mark.parametrize("variant", ["file", "mmap", "shard"])
@settings(max_examples=20, deadline=None)
@given(script=crash_scripts())
def test_any_crash_recovers_to_last_committed_sync(
    variant, script, tmp_path_factory
):
    ops, frac, mode = script
    root = tmp_path_factory.mktemp(f"crash-{variant}")
    shape = _Shape(variant, root)

    # Golden run: write count + commit points (close() commits too).
    run = root / "run"
    _copy(shape.golden, run)
    golden = FaultInjector()
    with shape.open(run, dict(BASE_VALUES), golden) as tree:
        _replay(tree, ops)
    writes = golden.writes
    commits = golden.commit_points(shape.tag)
    assert writes >= 1  # ops always include an insert

    # Oracle: contents at every sync that actually committed.
    oracle_dir = root / "oracle"
    _copy(shape.golden, oracle_dir)
    snapshots = []
    tree = shape.open(oracle_dir, dict(BASE_VALUES))
    try:
        plain_sync = tree.sync

        def snap_sync():
            before = shape.epochs(tree)
            flushed = plain_sync()
            if shape.epochs(tree) != before:
                snapshots.append(_contents(tree))
            return flushed

        tree.sync = snap_sync
        _replay(tree, ops)
    finally:
        tree.sync = plain_sync
        tree.close()
        # close() may commit once more (pending updates since the
        # last sync); its state is simply the final contents.
        if len(snapshots) < len(commits):
            reopened = shape.open(oracle_dir, dict(FULL_VALUES))
            snapshots.append(_contents(reopened))
            reopened.close()
    assert len(snapshots) == len(commits)

    # Crash run at a script-chosen write offset.
    crash_at = 1 + int(frac * writes)
    crash_dir = root / "crash"
    _copy(shape.golden, crash_dir)
    injector = FaultInjector(
        crash_after=crash_at, mode=mode, seed=crash_at
    )
    tree = shape.open(crash_dir, dict(BASE_VALUES), injector)
    try:
        _replay(tree, ops)
        tree.close()
    except SimulatedCrash:
        try:
            tree.close()
        except SimulatedCrash:
            pass
    else:
        pytest.fail(f"crash at write {crash_at} of {writes} never fired")

    if mode == "clean":
        committed = sum(1 for c in commits if c <= crash_at)
    else:
        committed = sum(1 for c in commits if c < crash_at)
    expected = snapshots[committed - 1] if committed else BASELINE

    survivor = shape.open(crash_dir, dict(FULL_VALUES))
    try:
        shape.validate(survivor)
        assert _contents(survivor) == expected
    finally:
        survivor.close()
