"""Property-based correctness: every index variant vs the brute-force oracle.

This is the single most important test in the suite: for arbitrary
rectangle sets and arbitrary windows, every tree variant must report
exactly the same matches as a linear scan.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.prtree.pseudo import PseudoPRTree
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import validate_rtree

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def rect_datasets(draw, dim=2, max_size=60):
    n = draw(st.integers(min_value=0, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit) for _ in range(dim)]
        hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.3))) for c in lo]
        data.append((Rect(lo, hi), i))
    return data


@st.composite
def windows(draw, dim=2):
    lo = [draw(unit) for _ in range(dim)]
    hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.6))) for c in lo]
    return Rect(lo, hi)


ALL_BUILDERS = [build_hilbert, build_hilbert4, build_tgs, build_str, build_prtree]
BUILDER_IDS = ["H", "H4", "TGS", "STR", "PR"]


class TestAllVariantsMatchOracle:
    @settings(max_examples=30, deadline=None)
    @given(rect_datasets(), windows(), st.integers(min_value=2, max_value=9))
    def test_2d_window_queries(self, data, window, fanout):
        want = brute_force_query(data, window)
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tree = builder(BlockStore(), data, fanout)
            validate_rtree(tree, expect_size=len(data))
            got, _ = QueryEngine(tree).query(window)
            assert sorted(v for _, v in got) == sorted(
                v for _, v in want
            ), f"{name} disagrees with brute force"

    @settings(max_examples=15, deadline=None)
    @given(rect_datasets(dim=3, max_size=40), windows(dim=3))
    def test_3d_window_queries(self, data, window):
        want = brute_force_query(data, window)
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS):
            tree = builder(BlockStore(), data, 4)
            got, _ = QueryEngine(tree).query(window)
            assert sorted(v for _, v in got) == sorted(
                v for _, v in want
            ), f"{name} disagrees with brute force in 3D"

    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(max_size=50), windows())
    def test_pseudo_prtree_matches_oracle(self, data, window):
        if not data:
            return
        tree = PseudoPRTree([(r, v) for r, v in data], capacity=4)
        got, _ = tree.query(window)
        want = brute_force_query(data, window)
        assert sorted(p for _, p in got) == sorted(v for _, v in want)

    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(max_size=50))
    def test_full_window_reports_everything(self, data):
        window = Rect((0.0, 0.0), (1.0, 1.0))
        for builder in ALL_BUILDERS:
            tree = builder(BlockStore(), data, 5)
            got, _ = QueryEngine(tree).query(window)
            assert len(got) == len(data)

    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(max_size=50))
    def test_faraway_window_reports_nothing(self, data):
        window = Rect((5.0, 5.0), (6.0, 6.0))
        for builder in ALL_BUILDERS:
            tree = builder(BlockStore(), data, 5)
            got, _ = QueryEngine(tree).query(window)
            assert got == []
