"""Figure 13: query cost versus window area on Eastern TIGER data.

Same setup and paper reading as Figure 12 (all variants within ~10% of
each other, close to T/B), on the denser Eastern dataset.
"""

from conftest import run_once

from repro.experiments.figures import figure13


def test_fig13_query_eastern(benchmark, record_table):
    table = run_once(benchmark, figure13, n=12_000, fanout=16, queries=60)
    record_table(table, "fig13_query_eastern")

    for area in {row[0] for row in table.rows}:
        ratios = {row[1]: row[2] for row in table.rows if row[0] == area}
        best = min(ratios.values())
        assert best < 4.0
        for variant, ratio in ratios.items():
            assert ratio <= 2.0 * best, (area, variant, ratios)

    # Output grows linearly with window area (sanity of the workload).
    t_small = [row[4] for row in table.rows if row[0] == 0.25][0]
    t_large = [row[4] for row in table.rows if row[0] == 2.0][0]
    assert t_large > 4 * t_small
