"""Figure 9: bulk-loading performance on the TIGER datasets.

Paper reading (Section 3.3): on Western data H/H4 use 1.2 M I/Os, PR
3.1 M (~2.5x more), TGS 14.7 M (~4.7x PR); on Eastern 1.7 / 4.4 / 21.1 M.
In wall-clock time the gaps compress (H/H4 451 s, PR 1495 s, TGS 4421 s)
because TGS is less CPU-bound than the others.

Expected shape here: the strict I/O ordering H ≈ H4 < PR < TGS.  Exact
ratios differ from the paper (our PR builder places one kd level per
distribution pass — see gridbuild.py's docstring — and our M/B is far
smaller), which EXPERIMENTS.md discusses.
"""

from conftest import run_once

from repro.experiments.figures import figure9
from repro.external.memory import MemoryModel


def test_fig09_bulkload_tiger(benchmark, record_table):
    table = run_once(
        benchmark,
        figure9,
        n_eastern=8000,
        n_western=5800,
        fanout=16,
        memory=MemoryModel(memory_records=1024, block_records=16),
    )
    record_table(table, "fig09_bulkload_tiger")

    for dataset in ("western", "eastern"):
        costs = {
            row[1]: row[2] for row in table.rows if row[0] == dataset
        }
        assert costs["H"] < costs["PR"] < costs["TGS"], costs
        assert costs["H4"] < costs["PR"], costs
        # H and H4 differ only in key computation: same sort cost.
        assert abs(costs["H"] - costs["H4"]) / costs["H"] < 0.2
