"""Figure 15: query cost on the extreme synthetic datasets — the paper's
headline robustness result.

Paper reading (Section 3.3):

* **SIZE** (left): for small rectangles all variants are near T/B; as
  max_side grows, "PR and H4 clearly outperform H and TGS.  H performs
  the worst ... TGS performs significantly better than H but still worse
  than PR and H4."
* **ASPECT** (middle): "as the aspect ratio increases, PR and H4 become
  significantly better than TGS and especially H"; PR performs as well
  as H4, close to the minimum.
* **SKEWED** (right): "the PR performance is unaffected by the
  transformations ... the query performance of the three other R-trees
  degenerates quickly as the point set gets more skewed."

Scale note: the heuristics' degradation grows with N while PR's fixed
O(√(N/B)) fringe shrinks relative to it; at reproduction scale we assert
the scale-robust core of each panel (H degrades hard, H4/PR stay robust,
PR exactly flat on SKEWED) rather than the exact within-panel ordering.
"""

from conftest import run_once

from repro.experiments.figures import figure15


def _ratios(table, dataset):
    return {row[1]: row[2] for row in table.rows if row[0] == dataset}


def test_fig15_size(benchmark, record_table):
    table = run_once(benchmark, figure15, n=10_000, fanout=12, queries=50, panel="size")
    record_table(table, "fig15_size")

    small = _ratios(table, "size(0.002)")
    large = _ratios(table, "size(0.4)")
    # Everyone is decent on small rectangles, and H beats H4 there
    # (paper: H4 "slightly worse than the packed Hilbert R-tree for
    # nicely distributed realistic data").
    assert max(small.values()) < 2.5 * min(small.values())
    assert small["H"] < small["H4"]
    # As rectangles grow the extent-aware loaders take over: H becomes
    # the worst variant and clearly loses to H4 — the paper's crossover.
    assert large["H"] == max(large.values())
    assert large["H"] > 1.15 * large["H4"]
    # PR stays robust: within 1.35x of the best at the extreme point.
    assert large["PR"] <= 1.35 * min(large.values())


def test_fig15_aspect(benchmark, record_table):
    table = run_once(
        benchmark, figure15, n=10_000, fanout=12, queries=50, panel="aspect"
    )
    record_table(table, "fig15_aspect")

    extreme = _ratios(table, "aspect(100000)")
    # H degrades dramatically; PR and H4 stay robust (paper: PR == H4,
    # both near optimal).
    assert extreme["H"] == max(extreme.values())
    assert extreme["H"] > 1.5 * extreme["PR"]
    assert extreme["H"] > 1.5 * extreme["H4"]
    # PR's robustness: within 2x of the panel's best even at 1e5 aspect.
    assert extreme["PR"] <= 2.0 * min(extreme.values())


def test_fig15_skewed(benchmark, record_table):
    table = run_once(
        benchmark, figure15, n=10_000, fanout=12, queries=50, panel="skewed"
    )
    record_table(table, "fig15_skewed")

    flat = _ratios(table, "skewed(1)")
    skewed = _ratios(table, "skewed(9)")

    # The paper's sharpest claim: PR is *unaffected* by the skew, because
    # its construction only compares same-axis coordinates.
    assert abs(skewed["PR"] - flat["PR"]) / flat["PR"] < 0.02

    # The other three degrade.
    for variant in ("H", "H4", "TGS"):
        assert skewed[variant] > 1.3 * flat[variant], variant

    # And PR ends up the best (or tied-best) variant at c=9.
    assert skewed["PR"] <= 1.05 * min(skewed.values())
