"""Update-path benchmark: dirty-page write-back on a packed index.

Not a paper figure — the paper stops at "a PR-tree can be updated in
O(log_B N) I/Os using the standard R-tree updating algorithms, but
without maintaining its query efficiency" (Section 1.2).  This
benchmark measures both halves of that sentence on the disk-backed
storage engine:

* **write-back saving**: each update batch's logical write I/Os
  (one per `AdjustTree`/`CondenseTree` node touch — what write-through
  paid physically) collapse into one physical page write per distinct
  dirty page at the batch's sync point.
* **query degradation**: the same window workload measured on the
  fresh bulk-load, after the updates, and on a re-bulk-load of the
  final data — the gap the standard update algorithms leave behind.
"""

from conftest import run_once

from repro.experiments.serving import update_bench

N = 20_000
UPDATES = 1_000


def test_update_writeback(benchmark, record_table):
    table = run_once(
        benchmark,
        update_bench,
        updates=UPDATES,
        queries=100,
        batch_size=250,
        cache_pages=256,
        dataset="tiger-east",
        n=N,
    )
    record_table(table, "update_writeback")

    batches = [row for row in table.rows if str(row[0]).startswith("update")]
    assert len(batches) == 4
    total_write_ios = sum(row[2] for row in batches)
    total_flushed = sum(row[3] for row in batches)
    assert total_write_ios > 0
    # The write-back contract: physical page writes are bounded by the
    # distinct dirty pages per batch — strictly fewer than the
    # write-through count (= the logical write I/Os).
    for row in batches:
        assert row[3] < row[2]
    assert total_flushed < total_write_ios

    queries = {row[0]: row for row in table.rows if row[2] == 0}
    assert queries["bulk-loaded query"][5] > 0
    # A fresh bulk-load of the final data answers the same windows at
    # least as cheaply as the incrementally updated tree.
    assert (
        queries["fresh bulk-load query"][5]
        <= queries["post-update query"][5] * 1.5
    )
