"""Table 1: thin line queries through the CLUSTER dataset.

Paper reading: a query returning ~0.3% of the points visits 37% of the
packed Hilbert tree's leaves, 94% of the 4D-Hilbert tree's, 25% of the
TGS tree's — and 1.2% of the PR-tree's.  "The PR-tree outperforms the
other indexes by well over an order of magnitude."

Scale note: PR's visited fraction is Θ(√(N/B)/(N/B)), so it shrinks with
dataset size; at 20k points we assert a ≥3x gap to every heuristic
rather than the paper's 20x at 10M points.
"""

from conftest import run_once

from repro.experiments.tables import table1


def test_table1_cluster(benchmark, record_table):
    table = run_once(benchmark, table1, n=20_000, fanout=16, queries=50)
    record_table(table, "table1_cluster")

    visited = {row[0]: row[2] for row in table.rows}  # visited_%

    # PR is far more robust than every heuristic.
    assert visited["PR"] < visited["H"] / 3, visited
    assert visited["PR"] < visited["H4"] / 3, visited
    assert visited["PR"] < visited["TGS"], visited

    # H4 is among the worst variants on this data (paper: 94%; at
    # reproduction scale H and H4 saturate together near 90%).
    assert visited["H4"] >= visited["TGS"], visited
    assert visited["H4"] >= 0.95 * max(visited.values()), visited
