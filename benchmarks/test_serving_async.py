"""Async-serving benchmark: open-loop latency percentiles vs arrival rate.

Not a paper figure — the paper stops at one synchronous query loop;
this measures the asyncio serving layer the ROADMAP's "heavy traffic"
north star asks for.  Expected shape: below saturation the p50 sits
near the coalescing flush window (queueing is negligible and the batch
executes in well under a millisecond per request), and as the arrival
rate crosses what the executor sustains, queue depth — and therefore
p95/p99 — grows sharply while achieved throughput flattens.  That
knee, not the mean, is the serving capacity of the index; the recorded
table (`results/serving_async_latency.txt`) pins it for a K=4 sharded
TIGER index under a 10%-write mixed workload.

The run also exercises admission control end to end: the final sweep
row offers far past saturation, where the bounded queue sheds load
(rejections > 0) instead of letting latency grow without bound.
"""

from conftest import run_once

from repro.experiments.serving import serve_async_bench

RATES = (250.0, 1000.0, 4000.0, 16000.0)
REQUESTS = 400
N = 20_000
SHARDS = 4


def test_async_latency_percentiles_vs_rate(benchmark, record_table):
    table = run_once(
        benchmark,
        serve_async_bench,
        rates=RATES,
        requests=REQUESTS,
        write_frac=0.1,
        max_batch=64,
        flush_ms=2.0,
        max_pending_reads=256,
        max_pending_writes=64,
        admission="reject",
        executor_workers=4,
        n=N,
        shards=SHARDS,
        mmap=True,
        seed=0,
    )
    record_table(table, "serving_async_latency")

    assert len(table.rows) == len(RATES)
    completed = table.column("completed")
    rejected = table.column("rejected")
    offered = table.column("offered")
    p50 = table.column("p50_ms")
    p99 = table.column("p99_ms")
    for row in range(len(RATES)):
        # Zero errors: every offered request either completed or was
        # cleanly rejected by admission control.
        assert completed[row] + rejected[row] == offered[row]
    # Percentiles are coherent and present at every rate.
    assert all(0 < p50[i] <= p99[i] for i in range(len(RATES)))
    # Below saturation nothing is shed...
    assert rejected[0] == 0
    # ...and the tail orders itself: an unsaturated service answers in
    # milliseconds, a saturated one visibly queues.
    assert p99[0] < p99[-1]
