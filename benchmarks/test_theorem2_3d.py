"""Theorem 2: the d-dimensional query bound, exercised at d = 3.

Paper (Section 2.3): "A PR-tree on a set of N hyperrectangles in d
dimensions can be bulk-loaded ... such that a window query can be
answered in O((N/B)^(1-1/d) + T/B) I/Os."  The evaluation section never
runs d > 2; this bench demonstrates the d = 3 bound on thin-slab queries
(near-zero output, the regime where the first term dominates) and checks
the exponent: 16x the data must scale the empty-query cost like
16^(2/3) ≈ 6.3, far below the 16x a linear structure would pay.

Note this is a *bound* demonstration, not a separation: on uniform
points every decent loader produces near-cubical leaves, so H matches
the same exponent here; the separation lives on adversarial data
(Theorem 3, shown in 2D by ``test_theorem3_worstcase``).
"""

import random

from conftest import run_once

from repro.experiments.report import Table
from repro.geometry.rect import Rect, point_rect
from repro.iomodel.blockstore import BlockStore
from repro.bulk.hilbert import build_hilbert
from repro.prtree.prtree import build_prtree, prtree_query_bound
from repro.rtree.query import QueryEngine


def _slab_queries(rounds: int):
    """Thin axis-aligned slabs cutting the unit cube."""
    for k in range(rounds):
        x = (k + 0.5) / rounds
        yield Rect((x, 0.0, 0.0), (x + 1e-9, 1.0, 1.0))


def _experiment(fanout: int = 8, rounds: int = 10) -> Table:
    table = Table(
        title="Theorem 2 (d=3): thin-slab queries on uniform points",
        headers=["n", "variant", "avg_leaf_ios", "leaves", "bound"],
    )
    for n in (2048, 8192, 32768):
        rng = random.Random(101)
        data = [
            (point_rect((rng.random(), rng.random(), rng.random())), i)
            for i in range(n)
        ]
        for name, builder in [("H", build_hilbert), ("PR", build_prtree)]:
            tree = builder(BlockStore(), data, fanout)
            engine = QueryEngine(tree)
            total = 0
            for window in _slab_queries(rounds):
                _, stats = engine.query(window)
                total += stats.leaf_reads
            bound = prtree_query_bound(n, fanout, 0, dim=3, constant=10.0)
            table.add_row(n, name, total / rounds, tree.leaf_count(), bound)
    table.add_note(f"B={fanout}, {rounds} slabs per point; bound = 10*(N/B)^(2/3)")
    return table


def test_theorem2_3d(benchmark, record_table):
    table = run_once(benchmark, _experiment)
    record_table(table, "theorem2_3d")

    pr = {row[0]: row for row in table.rows if row[1] == "PR"}
    # Within the analytic bound at every size.
    for n, row in pr.items():
        assert row[2] <= row[4], row

    # Exponent check: 16x data -> cost grows ~16^(2/3) ≈ 6.3, not 16.
    growth = pr[32768][2] / max(pr[2048][2], 1)
    assert growth < 10.0, pr

    # Context row, not a separation: on *uniform* points the Hilbert
    # tree's leaves are near-cubical too, so H also cuts ~ (N/B)^(2/3)
    # of them per slab — the worst-case gap needs adversarial data
    # (Theorem 3).  Just check H stayed sublinear as well, i.e. our slab
    # workload isn't accidentally output-dominated.
    h = {row[0]: row for row in table.rows if row[1] == "H"}
    h_growth = h[32768][2] / max(h[2048][2], 1)
    assert h_growth < 16.0, h
