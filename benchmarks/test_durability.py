"""Durability cost: group commit vs the all-or-nothing sync knobs.

Not a paper figure — the paper's experiments never fsync mid-run; this
pins the serving-layer durability trade the async service offers
(docs/durability.md).  One fixed open-loop mixed workload runs against
a fresh copy of the same packed index under four modes: no commits
until close (``sync_writes=False``, the write-latency floor), group
commit every N write batches, group commit on a wall-clock interval,
and a full ``sync()`` inside every exclusive write window
(``sync_writes=True``, the all-or-nothing ceiling).

Expected shape — and the PR's acceptance bar: group commit's
end-to-end write p95 stays at the ``none`` baseline (its commits run
concurrently with reads, never inside the write window), while its
committed epoch shows the durability actually bought; ``sync_writes``
pays the flush inside the window on every write batch.
"""

from conftest import run_once

from repro.experiments.serving import DURABILITY_MODES, durability_bench

REQUESTS = 300
RATE = 2_000.0
WRITE_FRAC = 0.25
SYNC_EVERY_N = 8
N = 12_000


def test_group_commit_write_window(benchmark, record_table):
    table = run_once(
        benchmark,
        durability_bench,
        modes=DURABILITY_MODES,
        sync_every_n=SYNC_EVERY_N,
        sync_interval_ms=50.0,
        rate=RATE,
        requests=REQUESTS,
        write_frac=WRITE_FRAC,
        n=N,
        seed=0,
    )
    record_table(table, "durability_group_commit")

    modes = table.column("mode")
    assert list(modes) == list(DURABILITY_MODES)
    completed = table.column("completed")
    commits = table.column("commits")
    committed = table.column("committed")
    epoch = table.column("epoch")
    by_mode = dict(zip(modes, range(len(modes))))

    # Backpressure admission: the whole stream completes in every mode.
    assert all(c == completed[0] for c in completed)

    # The baseline never commits through the service...
    assert commits[by_mode["none"]] == 0
    # ...the cadence modes do, and cover every write batch by close.
    for mode in ("group", "interval"):
        row = by_mode[mode]
        assert commits[row] >= 1
        assert committed[row] >= 1
    # Group commit's durability shows on disk: more committed epochs
    # than the close-only baseline (pack + owner close = 2).
    assert epoch[by_mode["none"]] == 2
    assert epoch[by_mode["group"]] == 1 + commits[by_mode["group"]]

    # The acceptance bar (report-only for wall clock in CI, asserted
    # loosely here): group commit must not stall the write window the
    # way sync-per-batch can.  Allow generous scheduler noise — the
    # hard gate is the recorded table diffed by bench_compare.
    p95 = table.column("write_p95_ms")
    assert p95[by_mode["group"]] > 0
    assert p95[by_mode["group"]] <= max(4.0 * p95[by_mode["none"]], 50.0)
