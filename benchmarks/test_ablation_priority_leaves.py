"""Ablation: priority-leaf size.

The paper's key structural choice over Agarwal et al. [2] is priority
leaves of size B instead of size 1 ("they used priority leaves of size
one rather than B").  This ablation builds PR-trees with priority size
B, B/2 and 1 on the Theorem 3 dataset and on uniform data, measuring
empty-output adversarial queries and ordinary window queries.

Measured tradeoff: shrinking the priority leaves leaves the worst-case
*asymptotics* intact (all sizes stay within the Theorem 1 bound) but
inflates the tree — priority size 1 produces ~5x more leaves on the same
data — and roughly doubles the ordinary-query cost ratio, because
underfull priority leaves waste block capacity everywhere.  That waste is
exactly why the paper packs B extremes per priority leaf instead of
adopting [2]'s size-1 leaves directly.
"""

from conftest import run_once

from repro.datasets.worstcase import worstcase_dataset, worstcase_query
from repro.experiments.report import Table
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine
from repro.workloads.queries import square_queries
from repro.geometry.rect import Rect

from tests.conftest import random_rects


def _ablation(n: int = 8192, fanout: int = 16, queries: int = 20) -> Table:
    table = Table(
        title="Ablation: PR-tree priority-leaf size",
        headers=["priority_size", "adversarial_ios", "uniform_ratio", "leaves"],
    )
    adversarial = worstcase_dataset(n, fanout)
    uniform = random_rects(n, seed=71, max_side=0.02)
    windows = square_queries(Rect((0, 0), (1, 1)), 1.0, count=queries, seed=72)

    for priority_size in (fanout, fanout // 2, 1):
        tree_a = build_prtree(
            BlockStore(), adversarial, fanout, priority_size=priority_size
        )
        engine_a = QueryEngine(tree_a)
        total = 0
        for seed in range(queries):
            _, stats = engine_a.query(
                worstcase_query(len(adversarial), fanout, seed=seed)
            )
            total += stats.leaf_reads

        tree_u = build_prtree(
            BlockStore(), uniform, fanout, priority_size=priority_size
        )
        engine_u = QueryEngine(tree_u)
        for window in windows:
            engine_u.query(window)
        t = engine_u.totals
        ratio = t.leaf_reads / (t.reported / fanout)
        table.add_row(priority_size, total / queries, ratio, tree_a.leaf_count())
    table.add_note(f"n={n}, B={fanout}; priority_size=1 is Agarwal et al. [2]")
    return table


def test_ablation_priority_leaf_size(benchmark, record_table):
    table = run_once(benchmark, _ablation)
    record_table(table, "ablation_priority_leaves")

    by_size = {row[0]: row for row in table.rows}
    full = by_size[16]
    tiny = by_size[1]
    # Size-1 priority leaves blow the tree up (wasted block capacity)...
    assert tiny[3] > 3 * full[3], (full, tiny)
    # ...and make ordinary window queries substantially more expensive.
    assert tiny[2] > 1.5 * full[2], (full, tiny)
    # All sizes keep the worst-case bound (the asymptotics don't change).
    from repro.prtree.prtree import prtree_query_bound

    for row in table.rows:
        assert row[1] <= prtree_query_bound(8192, 16, 0), row
