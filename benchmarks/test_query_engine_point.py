"""Query-engine benchmark: point (stabbing) queries across variants.

Not a paper figure — the stabbing query is one of the new operator
workloads.  Expected shape: the cheapest operator of all; on uniform
data a query touches about one leaf (the containing-box pruning descends
a near-single root-to-leaf path), and every extra leaf read directly
measures leaf-MBR overlap of the variant.
"""

from conftest import run_once

from repro.experiments.operators import point_experiment


def test_query_engine_point(benchmark, record_table):
    table = run_once(benchmark, point_experiment, n=5_000, fanout=16,
                     queries=100)
    record_table(table, "query_engine_point")

    datasets = {row[0] for row in table.rows}
    assert datasets == {"uniform", "skewed(c=5)"}

    for ds in datasets:
        rows = [row for row in table.rows if row[0] == ds]
        # Stabbing queries stay within a few leaves per query on every
        # variant — far below the ~320 leaves a scan would read.
        assert all(row[2] < 12 for row in rows), rows
        # All variants see the same data, so reported counts agree.
        assert len({row[3] for row in rows}) == 1, rows
