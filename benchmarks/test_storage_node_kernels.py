"""Array-native node kernels: per-node microbench and whole-path speedup.

Not a paper figure — this records the engineering win from the
structure-of-arrays node layout (``docs/query-engine.md``): the decoded
page is evaluated as one vectorized predicate instead of an
entry-at-a-time Python loop.  Expected shapes:

* **per-node kernels**: the numpy frame path beats the per-entry scalar
  loop by an order of magnitude at paper fanout (113 entries); the pure
  Python frame fallback stays within ~2x of the scalar loop.
* **fig12-class traversal**: end-to-end window queries over a PR-tree
  spend >=3x less CPU than the pre-refactor per-entry traversal (the
  scalar oracle below), at **identical leaf I/O** — the layout is
  invisible to the paper's metric.
* **batch x page**: co-located window batches evaluated set-at-a-time
  read fewer pages than solo execution, and the server's
  ``batch_windows`` mode inherits the saving; the serve-async
  saturation knee moves right accordingly (see
  ``benchmarks/results/serving_async_latency.txt``).
"""

import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro.experiments.report import Table
from repro.experiments.serving import pack_index
from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine, QueryStats, TraversalEngine
from repro.server import QueryServer, WindowRequest
from repro.storage import PagedTree
from repro.datasets.synthetic import uniform_rects
from repro.workloads.queries import square_queries

N = 30_000
FANOUT = 113


class _ScalarWindowEngine(TraversalEngine):
    """The pre-refactor per-entry window traversal (the CPU baseline)."""

    def query(self, window):
        tree = self.tree
        stats = QueryStats(queries=1)
        matches = []
        stack = [tree.root_id]
        while stack:
            node = self._read(stack.pop(), stats)
            if node.is_leaf:
                for rect, pointer in node.entries:
                    if rect.intersects(window):
                        matches.append((rect, tree.objects.get(pointer)))
                        stats.reported += 1
            else:
                for rect, pointer in node.entries:
                    if rect.intersects(window):
                        stack.append(pointer)
        self.totals.merge(stats)
        return matches, stats


def _time_per_call(fn, repeats: int) -> float:
    """Best-of-3 microseconds per call."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / repeats * 1e6


def _node_kernel_rows(table: Table, entries: int, repeats: int) -> None:
    data = uniform_rects(entries, seed=7)
    rects = [rect for rect, _ in data]
    lo_rows = [rect.lo for rect in rects]
    hi_rows = [rect.hi for rect in rects]
    window = Rect((0.2, 0.2), (0.7, 0.7))

    def scalar():
        return [i for i, rect in enumerate(rects) if rect.intersects(window)]

    # The frame kernels dispatch on the table type, so both the numpy
    # path and the pure-Python fallback are measurable in one process.
    py_lo, py_hi = tuple(lo_rows), tuple(hi_rows)

    def frame_python():
        return kernels.frame_intersecting(py_lo, py_hi, window.lo, window.hi)

    paths = [("entry-scalar", scalar), ("frame-python", frame_python)]
    if kernels.HAVE_NUMPY:
        np_lo = kernels.coord_table(lo_rows, 2)
        np_hi = kernels.coord_table(hi_rows, 2)

        def frame_numpy():
            return kernels.frame_intersecting(np_lo, np_hi, window.lo, window.hi)

        paths.append(("frame-numpy", frame_numpy))

    want = scalar()
    base_us = None
    for name, fn in paths:
        assert fn() == want  # all paths agree before timing
        per_call = _time_per_call(fn, repeats)
        if base_us is None:
            base_us = per_call
        table.add_row(f"node{entries}", name, per_call, 0, base_us / per_call)


def _kernels_experiment() -> Table:
    table = Table(
        title="array-native node kernels vs per-entry scalar path",
        headers=["config", "path", "time_us", "leaf_ios", "vs_scalar"],
    )
    _node_kernel_rows(table, entries=16, repeats=2000)
    _node_kernel_rows(table, entries=FANOUT, repeats=2000)

    # fig12-class end-to-end traversal: same tree, same queries, same
    # logical I/O -- only the per-node evaluation differs.
    tree = build_prtree(BlockStore(), uniform_rects(N, seed=9), FANOUT)
    windows = list(square_queries(tree.root().mbr(), 0.25, count=300, seed=11))

    def run_vectorized():
        engine = QueryEngine(tree)
        for window in windows:
            engine.query(window)
        return engine.totals

    def run_scalar():
        engine = _ScalarWindowEngine(tree)
        for window in windows:
            engine.query(window)
        return engine.totals

    results = {}
    for name, fn in (("entry-scalar", run_scalar), ("frame-kernels", run_vectorized)):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            totals = fn()
            best = min(best, time.perf_counter() - start)
        results[name] = (best, totals)
    scalar_s, scalar_totals = results["entry-scalar"]
    vector_s, vector_totals = results["frame-kernels"]
    assert vector_totals.leaf_reads == scalar_totals.leaf_reads
    assert vector_totals.reported == scalar_totals.reported
    table.add_row(
        "fig12-traversal", "entry-scalar", scalar_s * 1e6,
        scalar_totals.leaf_reads, 1.0,
    )
    table.add_row(
        "fig12-traversal", "frame-kernels", vector_s * 1e6,
        vector_totals.leaf_reads, scalar_s / vector_s,
    )
    table.add_note(
        f"backend={kernels.BACKEND}; node rows time one intersection kernel "
        "call (best of 3x2000); fig12 rows time 300 window queries "
        f"(0.25% area) over a PR-tree, n={N}, fanout={FANOUT}"
    )
    table.add_note(
        "leaf_ios identical by construction: the SoA layout never changes "
        "which blocks are read (tests/integration/test_vectorized_differential.py)"
    )
    return table


def _batch_experiment(queries: int = 64, cache_pages: int = 64) -> Table:
    table = Table(
        title="batch x page window evaluation on a paged PR-tree",
        headers=["config", "leaf_ios", "physical_reads", "time_us", "vs_solo"],
    )
    def run_solo(tree, windows):
        engine = QueryEngine(tree)
        for window in windows:
            engine.query(window)
        return engine.totals.leaf_reads

    def run_batch(tree, windows):
        engine = QueryEngine(tree)
        engine.query_batch(windows)
        return engine.totals.leaf_reads

    def run_server(tree, windows, **kwargs):
        server = QueryServer(tree, **kwargs)
        return server.submit([WindowRequest(w) for w in windows]).leaf_ios

    configs = [
        ("solo", run_solo, {}),
        ("batch", run_batch, {}),
        ("server", run_server, {}),
        ("server+batch", run_server, {"batch_windows": True}),
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmpdir:
        path = Path(tmpdir) / "index.pack"
        pack_index(path, variant="PR", dataset="uniform", n=N, seed=13)
        base_us = None
        for name, fn, kwargs in configs:
            # A fresh handle per run: every pass starts from the same
            # cold page cache, so the physical read counts compare the
            # strategies, not the leftover LRU state of the previous
            # row.  Best-of-3 keeps one-time warmup (first numpy
            # broadcast, allocator growth) out of the wall-clock column.
            elapsed = float("inf")
            for _ in range(3):
                with PagedTree.open(path, cache_pages=cache_pages) as tree:
                    windows = list(
                        square_queries(
                            tree.root().mbr(), 0.25, count=queries, seed=17
                        )
                    )
                    start = time.perf_counter()
                    leaf = fn(tree, windows, **kwargs)
                    elapsed = min(elapsed, time.perf_counter() - start)
                    delta = tree.page_stats
            if base_us is None:
                base_us = elapsed
            table.add_row(
                name, leaf, delta.physical_reads, elapsed * 1e6,
                base_us / elapsed,
            )
    table.add_note(
        f"{queries} co-located window queries (0.25% area), cache_pages="
        f"{cache_pages}; per-query stats stay as-if-solo, the store sees "
        "deduplicated page fetches"
    )
    return table


def test_node_kernels(benchmark, record_table):
    table = run_once(benchmark, _kernels_experiment)
    record_table(table, "storage_node_kernels")

    rows = {(row[0], row[1]): row for row in table.rows}
    speedup = rows[("fig12-traversal", "frame-kernels")][4]
    if kernels.HAVE_NUMPY:
        # The acceptance target is >=3x; gate loosely so shared CI
        # runners with noisy clocks cannot flake the suite.
        assert speedup >= 2.0
        assert rows[("node113", "frame-numpy")][4] > rows[("node16", "frame-numpy")][4] * 0.5
    # Identical logical I/O between the two traversal rows.
    assert (
        rows[("fig12-traversal", "frame-kernels")][3]
        == rows[("fig12-traversal", "entry-scalar")][3]
    )


def test_batch_page_evaluation(benchmark, record_table):
    table = run_once(benchmark, _batch_experiment)
    record_table(table, "storage_node_kernels_batch")

    rows = {row[0]: row for row in table.rows}
    # As-if-solo logical accounting: per-query leaf I/O sums match.
    assert rows["batch"][1] == rows["solo"][1]
    assert rows["server+batch"][1] == rows["server"][1]
    # The batch traversal fetches shared pages once.
    assert rows["batch"][2] <= rows["solo"][2]
    assert rows["server+batch"][2] <= rows["server"][2]
