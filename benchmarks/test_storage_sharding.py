"""Sharded-serving benchmarks: K=1 vs K=4/8 throughput and the
per-shard I/O balance of the Hilbert-range split.

Not paper figures — the paper stops at one index; these benchmarks
measure the scatter/gather layer on top of it.  Expected shapes:

* **throughput**: the fan-out adds bookkeeping per request but almost
  no logical I/O — each shard re-packs the same leaf entries in Hilbert
  order, so total leaf I/O shifts only a few percent across K — and
  K>1 throughput stays within a small constant factor of K=1 while
  spreading the physical reads across K files.
* **balance**: a uniform workload over a Hilbert-range split lands
  evenly — no shard should carry more than 2x the mean leaf I/O, the
  property that makes per-shard parallelism worth having.
"""

import tempfile
from pathlib import Path

from conftest import run_once

from repro.datasets.synthetic import uniform_rects
from repro.experiments.harness import build_variant
from repro.experiments.report import Table
from repro.experiments.serving import mixed_requests
from repro.iomodel.codec import fanout_for_block
from repro.server import QueryServer
from repro.storage import ShardedQueryEngine, ShardedTree, shard_pack
from repro.workloads.queries import square_queries

N = 30_000
FANOUT = fanout_for_block(4096, 2)  # 113, the paper's
REQUESTS = 600
BATCH = 200
SHARD_COUNTS = (1, 4, 8)
#: Total decoded-page budget, split evenly across a family's shards so
#: K=1 and K=8 compare at equal memory (cache_pages is per shard).
TOTAL_CACHE_PAGES = 1024


def _pack_families(tmp: Path, tree):
    """One manifest per shard count, all from the same bulk load."""
    paths = {}
    for k in SHARD_COUNTS:
        path = tmp / f"uniform.k{k}.manifest"
        stats = shard_pack(tree, path, shards=k)
        assert stats.shards == k
        paths[k] = path
    return paths


def _throughput_experiment() -> Table:
    table = Table(
        title="sharded serving: K=1 vs K=4/8 on a uniform mixed workload",
        headers=[
            "shards", "workers", "requests", "leaf_ios",
            "physical_reads", "latency_ms", "req_per_s",
        ],
    )
    data = uniform_rects(N, max_side=0.01, seed=0)
    tree = build_variant("PR", data, FANOUT)
    with tempfile.TemporaryDirectory(prefix="repro-shardbench-") as tmpdir:
        paths = _pack_families(Path(tmpdir), tree)
        for k in SHARD_COUNTS:
            for workers in (1, 4) if k > 1 else (1,):
                with ShardedTree.open(
                    paths[k], cache_pages=TOTAL_CACHE_PAGES // k
                ) as family:
                    server = QueryServer(family, workers=workers)
                    bounds = family.root().mbr()
                    stream = mixed_requests(bounds, count=REQUESTS, seed=1)
                    leaf = phys = 0
                    latency = 0.0
                    for b in range(0, len(stream), BATCH):
                        report = server.submit(stream[b : b + BATCH])
                        leaf += report.leaf_ios
                        phys += report.physical_reads
                        latency += report.latency_s
                    table.add_row(
                        k,
                        workers,
                        REQUESTS,
                        leaf,
                        phys,
                        latency * 1000.0,
                        REQUESTS / latency if latency > 0 else 0.0,
                    )
    table.add_note(
        f"PR over {N} uniform rects, fanout {FANOUT}, {REQUESTS} mixed "
        f"requests in batches of {BATCH}; equal total memory per K "
        f"({TOTAL_CACHE_PAGES} decoded pages split across shards)"
    )
    table.add_note(
        "leaf I/O is nearly partition-invariant: shards re-pack the same "
        "leaf entries in Hilbert order, so only leaf boundaries shift"
    )
    return table


def test_sharded_throughput(benchmark, record_table):
    table = run_once(benchmark, _throughput_experiment)
    record_table(table, "storage_sharding_throughput")

    rows = {(row[0], row[1]): row for row in table.rows}
    leaf_k1 = rows[(1, 1)][3]
    for k in SHARD_COUNTS:
        if k == 1:
            continue
        # The paper's metric barely moves when the index is split: the
        # shards hold the same entries, only leaf boundaries shift.
        assert abs(rows[(k, 1)][3] - leaf_k1) <= 0.15 * leaf_k1
        # The fan-out layer must not cost more than 3x K=1 throughput.
        assert rows[(k, 1)][6] * 3 >= rows[(1, 1)][6]
    for row in table.rows:
        assert row[6] > 0


def _balance_experiment() -> Table:
    table = Table(
        title="sharded serving: per-shard leaf-I/O balance (uniform data)",
        headers=[
            "shards", "shard", "size", "leaf_ios",
            "share", "x_mean", "busy_ms",
        ],
    )
    data = uniform_rects(N, max_side=0.01, seed=0)
    tree = build_variant("PR", data, FANOUT)
    with tempfile.TemporaryDirectory(prefix="repro-shardbench-") as tmpdir:
        paths = _pack_families(Path(tmpdir), tree)
        for k in SHARD_COUNTS:
            if k == 1:
                continue
            with ShardedTree.open(paths[k], cache_pages=256) as family:
                engine = ShardedQueryEngine(family)
                windows = square_queries(
                    family.root().mbr(), 0.25, count=200, seed=2
                )
                for window in windows:
                    engine.query(window)
                per_shard = engine.per_shard_totals()
                total = sum(t.leaf_reads for t in per_shard)
                mean = total / k
                for i, totals in enumerate(per_shard):
                    table.add_row(
                        k,
                        i,
                        family.shards[i].size,
                        totals.leaf_reads,
                        totals.leaf_reads / total if total else 0.0,
                        totals.leaf_reads / mean if mean else 0.0,
                        family.shard_busy_s[i] * 1000.0,
                    )
    table.add_note(
        f"200 window queries (0.25% area) over {N} uniform rects; "
        "x_mean is each shard's leaf I/O over the per-shard mean"
    )
    table.add_note(
        "acceptance bound: no shard exceeds 2x the mean leaf I/O on the "
        "uniform workload"
    )
    return table


def test_sharded_io_balance(benchmark, record_table):
    table = run_once(benchmark, _balance_experiment)
    record_table(table, "storage_sharding")

    for k in SHARD_COUNTS:
        if k == 1:
            continue
        ratios = [
            row[5] for row in table.rows if row[0] == k
        ]
        assert len(ratios) == k
        # The Hilbert-range split spreads a uniform workload evenly:
        # no shard exceeds 2x the mean leaf I/O.
        assert max(ratios) <= 2.0, ratios
        # And every shard contributes.
        assert min(ratios) > 0.0
