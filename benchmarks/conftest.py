"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures, prints
it (visible with ``pytest -s``) and saves the rendered text under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.
Each ``<name>.txt`` table gets a sibling ``<name>.json`` with the same
numbers in the stable ``repro-table/1`` schema
(:meth:`repro.experiments.report.Table.to_json`), so the performance
trajectory is machine-diffable across PRs.

Benchmarks run each experiment exactly once (``benchmark.pedantic`` with
one round): the interesting measurement is the simulated I/O inside the
experiment, not Python wall-clock jitter.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Print a result table; persist .txt + .json under results/."""

    def _record(table, name: str):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{name}.json").write_text(table.to_json() + "\n")
        return table

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
