"""Index-health drift: the degradation score tracks query degradation.

The health observatory exists to arm a self-maintenance trigger: a
cheap, query-free walk of the committed tree whose score is supposed to
rise exactly when the standard R-tree update algorithms have eroded the
bulk-loaded structure enough to cost real query I/O (paper Section 1.2
— the degradation the logarithmic method and re-packing exist to undo).

This benchmark proves the correlation on one update stream: pack a
PR-tree, apply mixed inserts/deletes through the write path in
checkpoints, and at each checkpoint record both the degradation score
(vs the pack-time baseline) and the measured window-query leaf I/O.
The score must start at ~0, never decrease along the stream, and move
in the same direction as the query cost; a fresh re-pack of the final
live set resets it to ~0.
"""

from conftest import run_once

from repro.experiments.report import Table
from repro.experiments.serving import mixed_update_requests
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.obs.health import degradation_score, index_quality
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine
from repro.server import QueryServer
from repro.storage import PagedTree, pack_tree
from repro.workloads.queries import square_queries

from tests.conftest import random_rects

N = 8_000
FANOUT = 16
BLOCK = 2_048
CHECKPOINTS = 4
BATCH = 1_000  # updates per checkpoint
QUERIES = 60
SEED = 7


def _ios_per_query(tree, windows) -> float:
    engine = QueryEngine(tree)
    for window in windows:
        engine.query(window)
    return engine.totals.leaf_reads / len(windows)


def _score(tree) -> float:
    aggregate, _ = index_quality(tree)
    return degradation_score(aggregate, tree.health_baseline)


def _experiment(tmp_path) -> tuple[Table, list[float], list[float]]:
    data = random_rects(N, seed=SEED, max_side=0.02)
    fresh = random_rects(CHECKPOINTS * BATCH, seed=SEED + 7919, max_side=0.02)
    half = (CHECKPOINTS * BATCH) // 2
    requests, live = mixed_update_requests(
        data[:half], fresh[: CHECKPOINTS * BATCH - half], seed=SEED + 2
    )
    live = live + data[half:]

    bounds = Rect((0.0, 0.0), (1.0, 1.0))
    windows = square_queries(bounds, 1.0, count=QUERIES, seed=SEED + 1).windows

    # The fresh bulk-load of the final live set: the reference both the
    # query cost and the re-pack score row are judged against.
    fresh_tree = build_prtree(BlockStore(), live, FANOUT)
    fresh_ios = _ios_per_query(fresh_tree, windows)

    table = Table(
        title=(
            f"index-health drift: degradation score vs window-query I/O "
            f"over {len(requests)} mixed updates (PR, n={N}, B={FANOUT})"
        ),
        headers=["checkpoint", "ops", "score", "ios_per_query", "io_vs_fresh"],
    )

    scores: list[float] = []
    ios: list[float] = []
    path = tmp_path / "drift.pack"
    mem_tree = build_prtree(BlockStore(), data, FANOUT)
    pack_tree(mem_tree, path, block_size=BLOCK)
    with PagedTree.open(
        path, values=dict(mem_tree.objects), cache_pages=256
    ) as tree:
        server = QueryServer(tree)

        def checkpoint(label: str, ops: int) -> None:
            score = _score(tree)
            cost = _ios_per_query(tree, windows)
            scores.append(score)
            ios.append(cost)
            table.add_row(
                label, ops, round(score, 6), cost, cost / fresh_ios
            )

        checkpoint("packed", 0)
        for i in range(CHECKPOINTS):
            server.submit(requests[i * BATCH : (i + 1) * BATCH])
            checkpoint(f"after {(i + 1) * BATCH} updates", (i + 1) * BATCH)

    # Re-packing the live set is the maintenance action the score arms:
    # it must restore both the query cost and a ~0 score.
    repack = tmp_path / "repack.pack"
    pack_tree(fresh_tree, repack, block_size=BLOCK)
    with PagedTree.open(repack, readonly=True) as packed_fresh:
        table.add_row(
            "fresh re-pack of live set",
            0,
            round(_score(packed_fresh), 6),
            fresh_ios,
            1.0,
        )

    table.add_note(
        f"{QUERIES} 1% windows per checkpoint; score = weighted relative "
        "drift vs the pack-time baseline (repro.obs.health)"
    )
    table.add_note(
        "a rising score without running a single query is the signal the "
        "self-maintenance trigger consumes; re-pack resets it"
    )
    return table, scores, ios


def test_index_health_drift(benchmark, record_table, tmp_path):
    table, scores, ios = run_once(benchmark, _experiment, tmp_path)
    record_table(table, "index_health_drift")

    # Fresh pack scores (numerically) zero; updates only push it up.
    assert 0.0 <= scores[0] < 1e-9
    for earlier, later in zip(scores, scores[1:]):
        assert later >= earlier - 1e-9, scores
    assert scores[-1] > 1e-3

    # The score moves with the measured query cost: the update stream
    # that raised it also made windows read more leaves than a fresh
    # bulk-load of the same live set.
    assert ios[-1] > ios[0]
    concordant = sum(
        1
        for i in range(len(scores))
        for j in range(i + 1, len(scores))
        if (scores[j] - scores[i]) * (ios[j] - ios[i]) > 0
    )
    discordant = sum(
        1
        for i in range(len(scores))
        for j in range(i + 1, len(scores))
        if (scores[j] - scores[i]) * (ios[j] - ios[i]) < 0
    )
    assert concordant > discordant, (scores, ios)

    # The re-pack row resets the score.
    repack_row = table.rows[-1]
    assert repack_row[0] == "fresh re-pack of live set"
    assert repack_row[2] == 0.0
