"""Query-engine benchmark: synchronized-traversal spatial join.

Not a paper figure — the join is one of the new operator workloads.
Expected shape: all variants report identical pair counts (a built-in
correctness cross-check), and on the low-selectivity shifted workload
(offset past the largest rectangle side) the traversal prunes to far
fewer leaf reads than the dense-overlap workload needs.
"""

from conftest import run_once

from repro.experiments.operators import join_experiment


def test_query_engine_join(benchmark, record_table):
    table = run_once(benchmark, join_experiment, n=3_000, fanout=16)
    record_table(table, "query_engine_join")

    workloads = {row[0] for row in table.rows}
    assert len(workloads) == 3

    for workload in workloads:
        rows = [row for row in table.rows if row[0] == workload]
        # Every variant found the same join result size.
        pair_counts = {row[2] for row in rows}
        assert len(pair_counts) == 1, rows
        # And did so without reading anywhere near every leaf pair
        # (each tree has ~190 leaves; the cartesian product is ~36k
        # pairs, i.e. >72k leaf reads for a naive nested-loop join).
        assert all(row[3] < 10_000 for row in rows), rows

    # Dense self-overlap (offset=0.002, below the max rectangle side)
    # reports a multiple of the shifted-apart workload's pairs: the
    # ~n self-match pairs dominate the background cross matches.
    dense = next(row[2] for row in table.rows if "0.002" in row[0])
    sparse = next(row[2] for row in table.rows if "0.05" in row[0])
    assert dense > 2 * sparse
