"""Figure 11: TGS bulk-loading cost depends on the data distribution.

Paper reading: TGS build time on 10 M-rectangle synthetic datasets ranges
from 3 726 s to 14 034 s across SIZE/ASPECT parameters — up to ~3.8x —
while H/H4 (381 s) and PR (1289 s) are essentially flat because their
construction "is based only on the relative order of coordinates".

Assertions: the PR builder's I/O spread across the 12 distributions is
small; TGS's spread is strictly larger than PR's.
"""

from conftest import run_once

from repro.experiments.figures import figure11
from repro.external.memory import MemoryModel


def test_fig11_tgs_distribution_sensitivity(benchmark, record_table):
    table = run_once(
        benchmark,
        figure11,
        n=4000,
        fanout=16,
        memory=MemoryModel(memory_records=1024, block_records=16),
    )
    record_table(table, "fig11_tgs_distribution")

    tgs_io = [row[2] for row in table.rows if row[1] == "TGS"]
    pr_io = [row[2] for row in table.rows if row[1] == "PR"]

    tgs_spread = max(tgs_io) / min(tgs_io)
    pr_spread = max(pr_io) / min(pr_io)

    # PR is distribution-insensitive (the paper notes only slight
    # variation from priority-box removal effects).
    assert pr_spread < 1.3, f"PR spread {pr_spread}"
    # TGS varies more than PR across distributions.
    assert tgs_spread > pr_spread, (tgs_spread, pr_spread)
    # And TGS is the more expensive loader everywhere.
    for dataset in {row[0] for row in table.rows}:
        costs = {row[1]: row[2] for row in table.rows if row[0] == dataset}
        assert costs["TGS"] > costs["PR"], (dataset, costs)
