"""Figure 14: query cost versus dataset size (Eastern subsets, 1% windows).

Paper reading: the four variants keep their relative ordering and stay
close to T/B as the dataset grows from 2.08 M to 16.72 M rectangles.

Assertions: at every size the variants stay within 2x of the best, and
the cost ratio of each variant does not degrade (grow by more than 50%)
from the smallest to the largest subset — i.e. the flat shape.
"""

from conftest import run_once

from repro.experiments.figures import figure14


def test_fig14_query_scaling(benchmark, record_table):
    table = run_once(benchmark, figure14, max_n=12_000, fanout=16, queries=60)
    record_table(table, "fig14_query_scaling")

    sizes = sorted({row[0] for row in table.rows})
    for n in sizes:
        ratios = {row[1]: row[2] for row in table.rows if row[0] == n}
        best = min(ratios.values())
        for variant, ratio in ratios.items():
            assert ratio <= 2.0 * best, (n, variant, ratios)

    for variant in ("H", "H4", "PR", "TGS"):
        series = sorted(
            (row[0], row[2]) for row in table.rows if row[1] == variant
        )
        first, last = series[0][1], series[-1][1]
        assert last <= 1.5 * first, f"{variant} degrades with n: {series}"
