"""Observability overhead: what tracing costs, and that "off" is free.

The tracing/metrics layer (docs/observability.md) promises a near-free
disabled path: with no tracer installed the only added work per I/O is
one contextvar read that returns None, so serve-bench throughput must
stay within 2% of an untraced build.  This benchmark records the same
mixed serve-bench workload over one shared packed index three ways —
observability off, 100% trace sampling, and trace + metrics + slow-log
— and pins the measured throughputs in `results/obs_overhead.txt` /
`.json` so the cost is tracked across PRs.

Wall-clock ratios between two in-process runs are noisy (page-cache
state is reset by reopening the index, but CPU contention is not), so
the hard assertion is deliberately loose; the recorded numbers are the
real deliverable.  Each config takes the best of two runs to shave the
worst of the jitter.
"""

import pathlib
import tempfile

from conftest import run_once

from repro.experiments.report import Table
from repro.experiments.serving import pack_index, serve_bench

REQUESTS = 600
BATCH = 200
N = 8_000
RUNS = 2


def _throughput(index, trace=None, metrics=None, slow_ms=None) -> float:
    """Best overall req/s over RUNS serve-bench runs (fresh cache each)."""
    best = 0.0
    for _ in range(RUNS):
        table = serve_bench(
            index=index,
            requests=REQUESTS,
            batch_size=BATCH,
            trace=trace,
            metrics=metrics,
            slow_ms=slow_ms,
            seed=0,
        )
        latency_s = sum(table.column("latency_ms")) / 1000.0
        best = max(best, sum(table.column("requests")) / latency_s)
    return best


def test_observability_overhead(benchmark, record_table):
    with tempfile.TemporaryDirectory(prefix="repro-obs-overhead-") as tmp:
        tmpdir = pathlib.Path(tmp)
        index = tmpdir / "index.pack"
        pack_index(index, n=N, seed=0)

        def measure():
            off = _throughput(index)
            traced = _throughput(index, trace=tmpdir / "t.jsonl")
            full = _throughput(
                index,
                trace=tmpdir / "f.jsonl",
                metrics=tmpdir / "f.prom",
                slow_ms=0.0,
            )
            return off, traced, full

        off, traced, full = run_once(benchmark, measure)

    table = Table(
        title=f"observability overhead: serve-bench, {REQUESTS} requests",
        headers=["config", "req_per_s", "vs_off"],
    )
    table.add_row("off", off, 1.0)
    table.add_row("trace 100%", traced, traced / off)
    table.add_row("trace+metrics+slowlog", full, full / off)
    table.add_note(
        "off = no tracer/metrics installed (the shipping default): the "
        "hot path's only obs cost is a contextvar read returning None, "
        "within 2% of an untraced build"
    )
    table.add_note(
        f"best of {RUNS} runs per config over one shared packed index "
        f"(n={N}, fresh page cache per run)"
    )
    record_table(table, "obs_overhead")

    # 100% sampling writes every span to disk and still keeps the bulk
    # of the throughput; the bound is loose because two in-process
    # wall-clock runs share a noisy machine.
    assert traced > 0.25 * off
    assert full > 0.20 * off
