"""Observability overhead: what each introspection layer costs.

The observability stack (docs/observability.md) promises a near-free
disabled path: with no tracer, profiler or cache tracker installed the
only added work per I/O is one contextvar read returning None (tracing)
plus one ``None`` check (ghost tracker) plus one module-level int check
(profiler phases), so serve-bench throughput must stay within noise of
an uninstrumented build.  This benchmark records the same mixed
serve-bench workload over one shared packed index five ways — all
observability off, 100% trace sampling, trace + metrics + slow-log,
sampling profiler on, and ghost-cache analytics on — and pins the
measured throughputs in `results/obs_overhead.txt` / `.json` so the
cost is tracked across PRs (`tools/bench_compare.py` diffs the JSON).

Wall-clock ratios between two in-process runs are noisy (page-cache
state is reset by reopening the index, but CPU contention is not), so
each config reports the median of RUNS runs and the hard assertions
are deliberately loose; the recorded numbers are the real deliverable.
"""

import pathlib
import statistics
import tempfile

from conftest import run_once

from repro.experiments.report import Table
from repro.experiments.serving import pack_index, serve_bench

REQUESTS = 600
BATCH = 200
N = 8_000
RUNS = 5


def _throughput(index, **kwargs) -> float:
    """Median overall req/s over RUNS serve-bench runs (fresh cache each)."""
    samples = []
    for _ in range(RUNS):
        table = serve_bench(
            index=index,
            requests=REQUESTS,
            batch_size=BATCH,
            seed=0,
            **kwargs,
        )
        latency_s = sum(table.column("latency_ms")) / 1000.0
        samples.append(sum(table.column("requests")) / latency_s)
    return statistics.median(samples)


def test_observability_overhead(benchmark, record_table):
    with tempfile.TemporaryDirectory(prefix="repro-obs-overhead-") as tmp:
        tmpdir = pathlib.Path(tmp)
        index = tmpdir / "index.pack"
        pack_index(index, n=N, seed=0)

        def measure():
            # Untimed warm-up: the first serve run pays OS page-cache
            # and CPU-frequency ramp-up that would bias whichever
            # config happens to run first.
            serve_bench(index=index, requests=REQUESTS, batch_size=BATCH)
            off = _throughput(index)
            traced = _throughput(index, trace=tmpdir / "t.jsonl")
            full = _throughput(
                index,
                trace=tmpdir / "f.jsonl",
                metrics=tmpdir / "f.prom",
                slow_ms=0.0,
            )
            profiled = _throughput(index, profile=tmpdir / "p.collapsed")
            ghost = _throughput(index, cache_analytics=True)
            explained = _throughput(index, explain=True)
            return off, traced, full, profiled, ghost, explained

        off, traced, full, profiled, ghost, explained = run_once(
            benchmark, measure
        )

    table = Table(
        title=f"observability overhead: serve-bench, {REQUESTS} requests",
        headers=["config", "req_per_s", "vs_off"],
    )
    table.add_row("off", off, 1.0)
    table.add_row("trace 100%", traced, traced / off)
    table.add_row("trace+metrics+slowlog", full, full / off)
    table.add_row("profiler 5ms", profiled, profiled / off)
    table.add_row("ghost cache", ghost, ghost / off)
    table.add_row("explain plans", explained, explained / off)
    table.add_note(
        "off = no tracer/profiler/tracker installed (the shipping "
        "default): the hot path's only obs cost is a contextvar read "
        "returning None, a None check and one int check, within noise "
        "of an uninstrumented build"
    )
    table.add_note(
        "profiler 5ms = wall-clock sampling profiler attributing stacks "
        "to serving phases; ghost cache = reuse-distance tracker on "
        "every page-table lookup (miss-ratio curve + working sets)"
    )
    table.add_note(
        "explain plans = per-request EXPLAIN capture (per-level visit "
        "counters + plan objects); disables window batching.  With "
        "explain off the server pays one boolean check per request and "
        "the plan field stays None — the disabled path is the 'off' row"
    )
    table.add_note(
        f"median of {RUNS} runs per config over one shared packed index "
        f"(n={N}, fresh page cache per run)"
    )
    record_table(table, "obs_overhead")

    # 100% sampling writes every span to disk and still keeps the bulk
    # of the throughput; the bounds are loose because two in-process
    # wall-clock runs share a noisy machine.
    assert traced > 0.25 * off
    assert full > 0.20 * off
    # The profiler only reads frames 200x/s from a separate thread and
    # the ghost tracker is O(#budgets) dict moves per page lookup; both
    # must stay far cheaper than full tracing.
    assert profiled > 0.5 * off
    assert ghost > 0.5 * off
    # Plan capture is pure in-memory counter work on nodes the query
    # already read; it must stay far cheaper than 100% tracing.
    assert explained > 0.4 * off
