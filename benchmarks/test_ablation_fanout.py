"""Ablation: fan-out (block size) sensitivity.

The paper fixes B = 113 (4 KB blocks / 36-byte entries) and notes earlier
studies "use block sizes ranging from 1KB to 4KB or fix the fan-out to a
number close to 100".  This ablation sweeps the fan-out and checks that
the PR-tree's worst-case advantage is not an artifact of one block size:
the Theorem 3 gap (heuristics visit everything, PR does not) must hold
for every B, and for every variant the absolute query cost must fall as
B grows (bigger blocks, fewer of them).
"""

from conftest import run_once

from repro.datasets.worstcase import worstcase_dataset, worstcase_query
from repro.experiments.report import Table
from repro.iomodel.blockstore import BlockStore
from repro.bulk.hilbert import build_hilbert
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine


def _sweep(n: int = 8192, queries: int = 10) -> Table:
    table = Table(
        title="Ablation: fan-out sweep on the Theorem 3 dataset",
        headers=["fanout", "variant", "avg_ios", "leaves", "visited_%"],
    )
    for fanout in (8, 16, 32):
        data = worstcase_dataset(n, fanout)
        for name, builder in [("H", build_hilbert), ("PR", build_prtree)]:
            tree = builder(BlockStore(), data, fanout)
            engine = QueryEngine(tree)
            total = 0
            for seed in range(queries):
                _, stats = engine.query(
                    worstcase_query(len(data), fanout, seed=seed)
                )
                total += stats.leaf_reads
            leaves = tree.leaf_count()
            avg = total / queries
            table.add_row(fanout, name, avg, leaves, 100.0 * avg / leaves)
    table.add_note(f"n={n} (rounded per B), empty-output adversarial queries")
    return table


def test_ablation_fanout(benchmark, record_table):
    table = run_once(benchmark, _sweep)
    record_table(table, "ablation_fanout")

    for fanout in (8, 16, 32):
        rows = {row[1]: row for row in table.rows if row[0] == fanout}
        # H visits everything at every fan-out; PR never does.
        assert rows["H"][4] > 90.0, (fanout, rows)
        assert rows["PR"][4] < 50.0, (fanout, rows)
        assert rows["PR"][2] < rows["H"][2] / 3

    # H's cost is exactly the leaf count, so it halves as B doubles; PR's
    # cost tracks sqrt(N/B) with a fringe constant and need not be
    # monotone at this scale — assert the H behaviour only.
    h_series = sorted((row[0], row[2]) for row in table.rows if row[1] == "H")
    h_ios = [io for _, io in h_series]
    assert h_ios == sorted(h_ios, reverse=True), h_series
