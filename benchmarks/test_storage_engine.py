"""Storage-engine benchmarks: paged-tree cache behaviour and the
batched query server's throughput.

Not paper figures — the paper stops at the index; these benchmarks
measure the disk-backed serving layer built on top of it.  Expected
shapes:

* **cold vs warm**: logical leaf I/O (the paper's metric) is identical
  between a cold and a warm pass over the same workload — the page
  cache is invisible to the accounting — while physical file reads
  collapse once the cache holds the working set, and stay bounded (with
  re-reads) when the cache is smaller than the tree.
* **batch server**: after the first batch warms the internal-node pools
  and page cache, later batches report zero internal reads and fewer
  physical reads, at thousands of requests per second even on the
  simulated-hardware-free pure-Python path.
"""

import tempfile
from pathlib import Path

from conftest import run_once

from repro.experiments.report import Table
from repro.experiments.serving import mixed_requests, pack_index, serve_bench
from repro.rtree.query import QueryEngine
from repro.server import QueryServer, WindowRequest
from repro.storage import PagedTree
from repro.workloads.queries import square_queries

N = 30_000


def _cold_warm_experiment(n: int = N, queries: int = 150) -> Table:
    table = Table(
        title="paged tree: cold vs warm page cache (PR over TIGER-east)",
        headers=[
            "cache_pages", "pass", "leaf_ios", "physical_reads",
            "cache_hits", "evictions",
        ],
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmpdir:
        path = Path(tmpdir) / "index.pack"
        pack_index(path, variant="PR", dataset="tiger-east", n=n)
        for cache_pages in (64, 4096):
            with PagedTree.open(path, cache_pages=cache_pages) as tree:
                windows = square_queries(
                    tree.root().mbr(), 0.25, count=queries, seed=5
                )
                engine = QueryEngine(tree)
                for label in ("cold", "warm"):
                    before_stats = tree.page_stats.snapshot()
                    before_leaf = engine.totals.leaf_reads
                    for window in windows:
                        engine.query(window)
                    delta = tree.page_stats - before_stats
                    table.add_row(
                        cache_pages,
                        label,
                        engine.totals.leaf_reads - before_leaf,
                        delta.physical_reads,
                        delta.hits,
                        delta.evictions,
                    )
    table.add_note(
        f"n={n}, fanout=113, {queries} window queries (0.25% area), "
        "run twice per cache size"
    )
    return table


def test_storage_cold_vs_warm(benchmark, record_table):
    table = run_once(benchmark, _cold_warm_experiment)
    record_table(table, "storage_cold_vs_warm")

    rows = {(row[0], row[1]): row for row in table.rows}
    for cache_pages in (64, 4096):
        cold = rows[(cache_pages, "cold")]
        warm = rows[(cache_pages, "warm")]
        # The paper's metric is invariant under the page cache.
        assert cold[2] == warm[2]
        # Warm passes never read more than cold ones.
        assert warm[3] <= cold[3]
    # A cache holding the whole tree serves the warm pass from memory.
    assert rows[(4096, "warm")][3] == 0
    # A tight cache keeps rereading but stays within its budget
    # (evictions prove pages were dropped, not accumulated).
    assert rows[(64, "warm")][3] > 0
    assert rows[(64, "warm")][5] > 0


def test_storage_batch_server_throughput(benchmark, record_table):
    table = run_once(
        benchmark,
        serve_bench,
        requests=1000,
        batch_size=250,
        cache_pages=512,
        dataset="tiger-east",
        n=N,
    )
    record_table(table, "storage_batch_server")

    assert len(table.rows) == 4
    for row in table.rows:
        _, requests, executed, dedup, *_ = row
        assert executed + dedup == requests
        assert row[8] > 0  # req_per_s
    # The first batch pays the cold-start; later batches run on warm
    # internal-node pools and page cache.
    internal = table.column("internal_reads")
    physical = table.column("physical_reads")
    assert internal[0] > 0
    assert all(reads == 0 for reads in internal[1:])
    assert physical[-1] <= physical[0]


def test_storage_server_dedup_saves_io(benchmark, record_table):
    def _dedup_experiment(n: int = 10_000) -> Table:
        table = Table(
            title="query server: dedup savings on a repeat-heavy batch",
            headers=["dedup", "requests", "executed", "leaf_ios", "latency_ms"],
        )
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmpdir:
            path = Path(tmpdir) / "index.pack"
            pack_index(path, variant="PR", dataset="tiger-east", n=n)
            with PagedTree.open(path, cache_pages=512) as tree:
                bounds = tree.root().mbr()
                hot = square_queries(bounds, 0.25, count=25, seed=9).windows
                # A zipfian-ish stream: 250 requests over 25 hot windows.
                requests = [
                    WindowRequest(hot[i % len(hot)]) for i in range(250)
                ]
                for dedup in (False, True):
                    server = QueryServer(tree, dedup=dedup)
                    report = server.submit(requests)
                    table.add_row(
                        "on" if dedup else "off",
                        report.requests,
                        report.executed,
                        report.leaf_ios,
                        report.latency_s * 1000.0,
                    )
        table.add_note("250 window requests drawn from 25 hot windows")
        return table

    table = run_once(benchmark, _dedup_experiment)
    record_table(table, "storage_server_dedup")

    off, on = table.rows
    assert off[2] == 250 and on[2] == 25
    # Ten-fold repeat rate -> ten-fold leaf-I/O saving.
    assert on[3] * 9 <= off[3]
