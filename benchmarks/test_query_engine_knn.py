"""Query-engine benchmark: best-first kNN across tree variants.

Not a paper figure — kNN is one of the new operator workloads layered on
the reproduction.  Expected shape: on uniform data every variant answers
k=10 queries in a handful of leaf I/Os (the best-first traversal only
reads leaves whose MINDIST is below the 10th-neighbor distance); on
CLUSTER data the heuristic trees pay for overlapping leaves exactly as
they do in Table 1's line queries, while the PR-tree stays bounded.
"""

from conftest import run_once

from repro.experiments.operators import knn_experiment


def test_query_engine_knn(benchmark, record_table):
    table = run_once(benchmark, knn_experiment, n=4_000, fanout=16, k=10,
                     queries=40)
    record_table(table, "query_engine_knn")

    datasets = {row[0] for row in table.rows}
    assert datasets == {"uniform", "skewed(c=5)", "cluster"}

    for ds in datasets:
        rows = [row for row in table.rows if row[0] == ds]
        # Every variant reported exactly k results per query.
        assert all(row[4] == 40 * 10 for row in rows), rows
        # Branch-and-bound: far below a full leaf scan (~250 leaves).
        assert all(row[2] < 60 for row in rows), rows

    # On uniform data all variants are within a small constant of the
    # ideal ⌈k/B⌉ = 1 leaf per query.
    uniform = [row[2] for row in table.rows if row[0] == "uniform"]
    assert max(uniform) < 10.0
