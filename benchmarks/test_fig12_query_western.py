"""Figure 12: query cost versus window area on Western TIGER data.

Paper reading: all four R-trees "perform remarkably well on the TIGER
data; their performance is within 10% of each other and they all answer
queries in close to T/B".  Ordering: TGS best, PR slightly better than H,
H4 last.

At reproduction scale the fixed per-query overhead (root-to-leaf
fringe) is proportionally larger, so the "within 10%" band widens; we
assert the weaker, scale-robust form: every variant's cost ratio is
within 2x of the best at every area, and all ratios are small.
"""

from conftest import run_once

from repro.experiments.figures import figure12


def test_fig12_query_western(benchmark, record_table):
    table = run_once(benchmark, figure12, n=12_000, fanout=16, queries=60)
    record_table(table, "fig12_query_western")

    for area in {row[0] for row in table.rows}:
        ratios = {row[1]: row[2] for row in table.rows if row[0] == area}
        best = min(ratios.values())
        assert best < 4.0, f"area {area}: best ratio {best} too far from T/B"
        for variant, ratio in ratios.items():
            assert ratio <= 2.0 * best, (area, variant, ratios)

    # Larger windows amortize better: the mean ratio at 2% is below the
    # mean ratio at 0.25%.
    small = [row[2] for row in table.rows if row[0] == 0.25]
    large = [row[2] for row in table.rows if row[0] == 2.0]
    assert sum(large) / len(large) < sum(small) / len(small)
