"""Ablation: dynamic update strategies on a bulk-loaded PR-tree.

The paper: "The PR-tree can be updated using any known update heuristic
for R-trees, but then its performance cannot be guaranteed theoretically
anymore and its practical performance might suffer as well.  ...  In the
future we wish to experiment to see what happens to the performance when
we apply heuristic update algorithms and when we use the theoretically
superior logarithmic method" — i.e. exactly this experiment, which the
paper leaves as future work.

Setup: bulk-load a PR-tree, churn half the data (delete + reinsert) with
each update strategy, then measure window queries; the logarithmic
method builds from scratch by insertion.  Reported against the freshly
bulk-loaded tree as the reference.
"""

import random

from conftest import run_once

from repro.experiments.report import Table
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.logmethod import LogMethodPRTree
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine
from repro.rtree.rstar import rstar_insert
from repro.rtree.split import linear_split, quadratic_split
from repro.rtree.tree import RTree
from repro.rtree.update import delete, insert
from repro.workloads.queries import square_queries

from tests.conftest import random_rects


def _churn(tree, items, inserter):
    for rect, value in items:
        delete(tree, rect, value)
    for rect, value in items:
        inserter(tree, rect, value)


def _measure(tree_or_log, windows) -> float:
    if isinstance(tree_or_log, LogMethodPRTree):
        total = 0
        for window in windows:
            _, stats = tree_or_log.query_with_stats(window)
            total += stats.leaf_reads
        return total / len(windows)
    engine = QueryEngine(tree_or_log)
    for window in windows:
        engine.query(window)
    return engine.totals.leaf_reads / engine.totals.queries


def _experiment(n: int = 6000, fanout: int = 16, queries: int = 40) -> Table:
    data = random_rects(n, seed=81, max_side=0.02)
    windows = list(square_queries(Rect((0, 0), (1, 1)), 1.0, count=queries, seed=82))
    rng = random.Random(83)
    churn_set = data[: n // 2]

    table = Table(
        title="Ablation: query cost after 50% churn, by update strategy",
        headers=["strategy", "avg_leaf_ios", "vs_fresh_bulk"],
    )

    fresh = build_prtree(BlockStore(), data, fanout)
    baseline = _measure(fresh, windows)
    table.add_row("fresh PR bulk-load (reference)", baseline, 1.0)

    strategies = [
        ("Guttman quadratic", lambda t, r, v: insert(t, r, v, splitter=quadratic_split)),
        ("Guttman linear", lambda t, r, v: insert(t, r, v, splitter=linear_split)),
        ("R* (reinsert + R* split)", rstar_insert),
    ]
    for name, inserter in strategies:
        tree = build_prtree(BlockStore(), data, fanout)
        shuffled = churn_set[:]
        rng.shuffle(shuffled)
        _churn(tree, shuffled, inserter)
        cost = _measure(tree, windows)
        table.add_row(name, cost, cost / baseline)

    logtree = LogMethodPRTree(BlockStore(), fanout=fanout)
    for rect, value in data:
        logtree.insert(rect, value)
    cost = _measure(logtree, windows)
    table.add_row("logarithmic method (all inserts)", cost, cost / baseline)

    table.add_note(f"n={n}, B={fanout}, {queries} 1% windows; churn = delete+reinsert half")
    return table


def test_ablation_update_strategies(benchmark, record_table):
    table = run_once(benchmark, _experiment)
    record_table(table, "ablation_updates")

    rows = {row[0]: row for row in table.rows}
    baseline = rows["fresh PR bulk-load (reference)"][1]

    # Churned trees lose some quality but stay within a small factor.
    for name in ("Guttman quadratic", "Guttman linear", "R* (reinsert + R* split)"):
        assert rows[name][1] < 4.0 * baseline, rows[name]

    # R* churn produces a tree at least as good as Guttman-linear churn.
    assert (
        rows["R* (reinsert + R* split)"][1] <= rows["Guttman linear"][1] * 1.05
    )

    # The logarithmic method stays within a components-factor of fresh.
    assert rows["logarithmic method (all inserts)"][1] < 4.0 * baseline
