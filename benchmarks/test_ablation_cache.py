"""Ablation: the internal-node cache (paper footnote 5).

The paper caches all internal nodes during query experiments and notes:
"Experiments with the cache disabled showed that in our experiments the
cache actually had relatively little effect on the window query
performance."  This bench quantifies that at reproduction scale: total
node reads with the cache on (leaf reads + cold misses) versus off
(every visited node is a disk read), for all four variants.

Expected: the cache saves exactly the warm internal re-reads; since
internal nodes are a ~1/B fraction of the tree, the uncached cost
exceeds the cached cost by a modest factor bounded by the tree height.
"""

from conftest import run_once

from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import VARIANT_ORDER, build_variant
from repro.experiments.report import Table
from repro.rtree.query import QueryEngine
from repro.workloads.queries import dataset_bounds, square_queries


def _experiment(n: int = 10_000, fanout: int = 16, queries: int = 60) -> Table:
    data = tiger_dataset(n, "eastern", seed=91)
    windows = list(
        square_queries(dataset_bounds(data), 1.0, count=queries, seed=92)
    )
    table = Table(
        title="Ablation: internal-node cache on vs off (1% windows)",
        headers=["variant", "cached_reads", "uncached_reads", "penalty"],
    )
    for name in VARIANT_ORDER:
        tree = build_variant(name, data, fanout)
        warm = QueryEngine(tree, cache_internal=True)
        cold = QueryEngine(tree, cache_internal=False)
        for window in windows:
            warm.query(window)
            cold.query(window)
        cached = warm.totals.leaf_reads + warm.totals.internal_reads
        uncached = cold.totals.leaf_reads + cold.totals.internal_reads
        table.add_row(name, cached / queries, uncached / queries, uncached / cached)
    table.add_note(f"n={n}, B={fanout}; reads averaged per query")
    return table


def test_ablation_cache(benchmark, record_table):
    table = run_once(benchmark, _experiment)
    record_table(table, "ablation_cache")

    for variant, cached, uncached, penalty in table.rows:
        # Caching can only help.
        assert uncached >= cached, (variant, cached, uncached)
        # ... and "had relatively little effect": bounded by a small
        # factor (internal nodes are a height-bounded fraction of reads).
        assert penalty < 2.0, (variant, penalty)
