"""Figure 10: bulk-loading I/Os versus dataset size (5 Eastern subsets).

Paper reading: H/H4 and PR "scale relatively linearly with dataset size";
TGS grows "in an only slightly superlinear way".

Assertions: per-variant I/O grows monotonically in n; per-rectangle I/O
(io/n) for H stays within a modest band across the size sweep (linearity),
and the H < PR < TGS ordering holds at every size.
"""

from conftest import run_once

from repro.experiments.figures import figure10
from repro.external.memory import MemoryModel


def test_fig10_bulkload_scaling(benchmark, record_table):
    table = run_once(
        benchmark,
        figure10,
        max_n=8000,
        fanout=16,
        memory=MemoryModel(memory_records=1024, block_records=16),
    )
    record_table(table, "fig10_bulkload_scaling")

    series: dict[str, list[tuple[int, int]]] = {}
    for n, variant, io, _ in table.rows:
        series.setdefault(variant, []).append((n, io))

    for variant, points in series.items():
        points.sort()
        ios = [io for _, io in points]
        assert ios == sorted(ios), f"{variant} I/O not monotone in n"

    # Ordering holds at every out-of-core dataset size (subsets that fit
    # entirely in the M-record memory build in one pass for every loader
    # and the ordering is not meaningful there).
    sizes = sorted({n for n, *_ in table.rows})
    for n in sizes:
        if n <= 1024:  # the memory budget used below
            continue
        costs = {row[1]: row[2] for row in table.rows if row[0] == n}
        assert costs["H"] < costs["PR"] < costs["TGS"], (n, costs)

    # Near-linear scaling for the sort-based loader: I/O per rectangle
    # varies by < 2x across an 8x size range.
    h_per_rect = [io / n for n, io in sorted(series["H"])]
    assert max(h_per_rect) / min(h_per_rect) < 2.0
