"""Theorem 3: the lower-bound dataset for heuristic R-trees.

Paper reading (Section 2.4): on the bit-reversal shifted grid, a window
query that reports nothing forces the packed Hilbert, 4D-Hilbert and TGS
R-trees to visit all Θ(N/B) leaves, while the PR-tree answers in
O(√(N/B)) I/Os (Theorem 1 with T = 0).

Assertions: the three heuristics visit ≥90% of their leaves; the PR-tree
stays under its analytic bound and under 25% of its leaves; the H-to-PR
gap exceeds 5x.
"""

from conftest import run_once

from repro.experiments.tables import theorem3_demo


def test_theorem3_worstcase(benchmark, record_table):
    table = run_once(benchmark, theorem3_demo, n=16_384, fanout=16, queries=20)
    record_table(table, "theorem3_worstcase")

    rows = {row[0]: row for row in table.rows}

    for variant in ("H", "H4", "TGS"):
        visited_pct = rows[variant][3]
        assert visited_pct > 90.0, (variant, visited_pct)

    pr_ios, _, pr_visited_pct, pr_bound = rows["PR"][1:]
    assert pr_ios <= pr_bound
    assert pr_visited_pct < 25.0

    assert rows["H"][1] / max(pr_ios, 1) > 5.0
